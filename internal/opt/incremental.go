package opt

import (
	"fmt"
	"math"

	"eedtree/internal/core"
	"eedtree/internal/engine"
	"eedtree/internal/rlctree"
)

// This file wires the optimizers onto the incremental analysis engine.
// Every candidate evaluation used to rebuild the RLC tree from scratch
// (section names, map inserts, validation and all) and re-run the full
// O(n) two-pass summations — thousands of times per solve. The paper's
// summations are recursively maintainable, so instead each optimizer holds
// one engine.Session per problem and perturbs only the elements a
// candidate changes: O(depth) per evaluation, with results bit-identical
// to the from-scratch path (the internal/incr contract). The *Rebuild
// twins of the old behavior survive below as benchmark and CI baselines.

// widthDelayEval evaluates the sizing objective for one segment-width
// change at a time; the interface lets the coordinate-descent core run
// unchanged over the incremental session and the rebuild baseline.
type widthDelayEval interface {
	// setWidth applies width w to segment i (no-op if unchanged).
	setWidth(i int, w float64) error
	// delay returns the objective at the currently applied widths.
	delay() (float64, error)
}

// sizingEval is the incremental evaluator: a live session over the
// driver→segments→load tree, editing only changed segments.
type sizingEval struct {
	p      SizingProblem
	sess   *engine.Session
	segs   []*rlctree.Section
	sink   *rlctree.Section
	widths []float64
}

// sizingTree builds the driver → segments → load tree the sizing
// objective is evaluated on: a zero-C driver section carrying RDriver,
// one section per segment at its width's model values, and a
// zero-impedance leaf carrying CLoad. Both the one-shot and the
// incremental evaluation run on trees built here, so their element
// values — and therefore sums and delays — are bit-identical.
func sizingTree(p SizingProblem, widths []float64) (segs []*rlctree.Section, sink *rlctree.Section, err error) {
	if len(widths) != p.Segments {
		return nil, nil, fmt.Errorf("opt: got %d widths for %d segments", len(widths), p.Segments)
	}
	t := rlctree.New()
	parent, err := t.AddSection("drv", nil, p.RDriver, 0, 0)
	if err != nil {
		return nil, nil, err
	}
	segs = make([]*rlctree.Section, p.Segments)
	for i, w := range widths {
		if err := p.checkWidth(i, w); err != nil {
			return nil, nil, err
		}
		v := p.Model.Values(w)
		s, err := t.AddSection(fmt.Sprintf("w%d", i+1), parent, v.R, v.L, v.C)
		if err != nil {
			return nil, nil, err
		}
		segs[i] = s
		parent = s
	}
	sink, err = t.AddSection("load", parent, 0, 0, p.CLoad)
	if err != nil {
		return nil, nil, err
	}
	return segs, sink, nil
}

// newSizingEval builds the sizing tree and opens an incremental session
// over it.
func newSizingEval(p SizingProblem, widths []float64) (*sizingEval, error) {
	segs, sink, err := sizingTree(p, widths)
	if err != nil {
		return nil, err
	}
	sess, err := engine.NewSession(sink.Tree())
	if err != nil {
		return nil, err
	}
	return &sizingEval{
		p:      p,
		sess:   sess,
		segs:   segs,
		sink:   sink,
		widths: append([]float64(nil), widths...),
	}, nil
}

func (p SizingProblem) checkWidth(i int, w float64) error {
	if w < p.WMin || w > p.WMax || math.IsNaN(w) {
		return fmt.Errorf("opt: width %d = %g outside [%g, %g]", i, w, p.WMin, p.WMax)
	}
	return nil
}

func (e *sizingEval) setWidth(i int, w float64) error {
	if err := e.p.checkWidth(i, w); err != nil {
		return err
	}
	if w == e.widths[i] {
		return nil
	}
	v := e.p.Model.Values(w)
	// C before R: the capacitance edit marks the sums stale, so the
	// following resistance edit skips its eager subtree refresh and the
	// next query pays a single O(depth) path walk for both.
	if err := e.sess.SetC(e.segs[i], v.C); err != nil {
		return err
	}
	if err := e.sess.SetR(e.segs[i], v.R); err != nil {
		return err
	}
	e.widths[i] = w
	return nil
}

func (e *sizingEval) delay() (float64, error) { return e.sess.DelayAt(e.sink) }

// setWidths applies a whole width vector (only changed segments edit).
func (e *sizingEval) setWidths(widths []float64) error {
	if len(widths) != e.p.Segments {
		return fmt.Errorf("opt: got %d widths for %d segments", len(widths), e.p.Segments)
	}
	for i, w := range widths {
		if err := e.setWidth(i, w); err != nil {
			return err
		}
	}
	return nil
}

// rebuildSizingEval is the pre-incremental behavior: every evaluation
// reconstructs the tree and re-runs the full O(n) summation passes. It is
// retained as the baseline for the twin benchmarks and the CI speedup
// gate, and to cross-check that the incremental path is bit-identical.
type rebuildSizingEval struct {
	p      SizingProblem
	widths []float64
}

func (e *rebuildSizingEval) setWidth(i int, w float64) error {
	if err := e.p.checkWidth(i, w); err != nil {
		return err
	}
	e.widths[i] = w
	return nil
}

func (e *rebuildSizingEval) delay() (float64, error) { return delayRebuild(e.p, e.widths) }

// delayRebuild evaluates the sizing objective from scratch: fresh tree,
// full two-pass sums, closed-form kernel at the load. This is what every
// candidate evaluation cost before the incremental engine.
func delayRebuild(p SizingProblem, widths []float64) (float64, error) {
	_, sink, err := sizingTree(p, widths)
	if err != nil {
		return 0, err
	}
	m, err := core.AtNode(sink)
	if err != nil {
		return 0, err
	}
	return m.Delay50(), nil
}

// stageEval evaluates one repeater stage's delay across candidate sizes on
// a live session: the line sections never change with size, only the
// driver resistance (ROut/size) and the receiver load (CIn·size) do, so a
// size candidate costs two edits and one O(depth) query.
type stageEval struct {
	rep  Repeater
	sess *engine.Session
	drv  *rlctree.Section
	load *rlctree.Section
	size float64
}

// newStageEval builds the k-segment stage tree at the given initial size.
func newStageEval(line LineSpec, rep Repeater, k int, size float64) (*stageEval, error) {
	seg := LineSpec{
		R:        line.R / float64(k),
		L:        line.L / float64(k),
		C:        line.C / float64(k),
		Sections: line.Sections,
	}
	t, sink, err := segmentTree(rep.ROut/size, seg, rep.CIn*size)
	if err != nil {
		return nil, err
	}
	sess, err := engine.NewSession(t)
	if err != nil {
		return nil, err
	}
	return &stageEval{rep: rep, sess: sess, drv: t.Section("drv"), load: sink, size: size}, nil
}

// delay returns the stage delay at the given repeater size (intrinsic
// delay included), editing the driver and load in place.
func (e *stageEval) delay(size float64) (float64, error) {
	if !(size > 0) {
		return 0, fmt.Errorf("opt: size must be > 0, got %g", size)
	}
	if size != e.size {
		if err := e.sess.SetC(e.load, e.rep.CIn*size); err != nil {
			return 0, err
		}
		if err := e.sess.SetR(e.drv, e.rep.ROut/size); err != nil {
			return 0, err
		}
		e.size = size
	}
	d, err := e.sess.DelayAt(e.load)
	if err != nil {
		return 0, err
	}
	return d + e.rep.TIntrinsic, nil
}

// optimizeWidths is the coordinate-descent core shared by OptimizeWidths
// and its rebuild twin: cyclic golden-section line searches per segment
// until a full sweep improves the delay by less than relTol or maxSweeps
// is reached. The evaluator supplies the objective; since both evaluators
// are bit-identical, both twins take identical descent paths and return
// identical results.
func optimizeWidths(p SizingProblem, relTol float64, maxSweeps int, ev widthDelayEval, widths []float64) (SizingResult, error) {
	cur, err := ev.delay()
	if err != nil {
		return SizingResult{}, err
	}
	sweeps := 0
	converged := false
	for sweeps < maxSweeps && !converged {
		sweeps++
		prev := cur
		for i := range widths {
			obj := func(w float64) float64 {
				if err := ev.setWidth(i, w); err != nil {
					return math.Inf(1)
				}
				d, err := ev.delay()
				if err != nil {
					return math.Inf(1)
				}
				return d
			}
			w, fw := goldenSection(obj, p.WMin, p.WMax, 1e-7)
			if fw <= cur {
				// The line search already evaluated fw at w: accept
				// without re-evaluating the objective.
				if err := ev.setWidth(i, w); err != nil {
					return SizingResult{}, err
				}
				widths[i], cur = w, fw
			} else if err := ev.setWidth(i, widths[i]); err != nil {
				return SizingResult{}, err
			}
		}
		converged = prev-cur <= relTol*prev
	}
	return SizingResult{Widths: widths, Delay: cur, Sweeps: sweeps, Converged: converged}, nil
}

// optimizeWidthsRebuild is OptimizeWidths over the from-scratch evaluator —
// the pre-incremental cost model. It exists as the benchmark and CI-gate
// baseline; production callers should use OptimizeWidths.
func optimizeWidthsRebuild(p SizingProblem, relTol float64, maxSweeps int) (SizingResult, error) {
	relTol, maxSweeps = sizingDefaults(relTol, maxSweeps)
	if err := p.validate(); err != nil {
		return SizingResult{}, err
	}
	widths := initialWidths(p)
	ev := &rebuildSizingEval{p: p, widths: append([]float64(nil), widths...)}
	return optimizeWidths(p, relTol, maxSweeps, ev, widths)
}

func sizingDefaults(relTol float64, maxSweeps int) (float64, int) {
	if relTol <= 0 {
		relTol = 1e-9
	}
	if maxSweeps <= 0 {
		maxSweeps = 50
	}
	return relTol, maxSweeps
}

func initialWidths(p SizingProblem) []float64 {
	widths := make([]float64, p.Segments)
	for i := range widths {
		widths[i] = math.Sqrt(p.WMin * p.WMax)
	}
	return widths
}
