//go:build !race

package opt

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
