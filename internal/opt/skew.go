package opt

import (
	"fmt"
	"math"
	"sort"

	"eedtree/internal/core"
	"eedtree/internal/engine"
	"eedtree/internal/rlctree"
)

// Skew balancing: tune the widths of designated branches of a clock tree
// so that all sinks see (nearly) the same equivalent Elmore delay — the
// clock-distribution application the paper cites as a primary consumer of
// fast delay models ([26]: skew under the Elmore model correlates highly
// with SPICE skew; here the metric is the RLC-aware EED instead).

// SkewProblem describes a skew-balancing run. Tunable sections behave as
// wires whose width w scales R → R/w and C → C·w (L is width-insensitive),
// the same first-order model as WireModel.
type SkewProblem struct {
	Tree       *rlctree.Tree
	Tunable    []string // names of width-adjustable sections
	WMin, WMax float64  // width bounds, 0 < WMin ≤ 1 ≤ WMax (w = 1 is the drawn width)
}

func (p SkewProblem) validate() error {
	if p.Tree == nil || p.Tree.Len() == 0 {
		return fmt.Errorf("opt: skew problem needs a tree")
	}
	if len(p.Tunable) == 0 {
		return fmt.Errorf("opt: skew problem needs tunable sections")
	}
	if !(p.WMin > 0) || p.WMin > 1 || p.WMax < 1 {
		return fmt.Errorf("opt: need 0 < WMin ≤ 1 ≤ WMax, got [%g, %g]", p.WMin, p.WMax)
	}
	for _, name := range p.Tunable {
		if p.Tree.Section(name) == nil {
			return fmt.Errorf("opt: tunable section %q not in the tree", name)
		}
	}
	return nil
}

// SkewResult reports the balancing outcome.
type SkewResult struct {
	Widths     map[string]float64 // per tunable section
	SkewBefore float64            // max−min sink delay at all widths = 1 [s]
	SkewAfter  float64            // after optimization [s]
	// Sweeps counts full coordinate-descent sweeps executed, including the
	// final sweep that established convergence; Converged reports whether
	// the run stopped on the relTol criterion rather than the sweep bound.
	Sweeps    int
	Converged bool
}

// skewEval evaluates the skew objective on a live incremental session
// over a private copy of the problem tree: a width candidate edits one
// tunable section's R and C in place (two journaled edits) and each sink
// delay re-derives in O(depth), instead of rebuilding and re-sweeping the
// whole tree per candidate. Values are computed with the same arithmetic
// as skewOf's rebuild (R/w, C·w from the drawn values), so the two
// evaluations agree bit for bit.
type skewEval struct {
	sess   *engine.Session
	leaves []*rlctree.Section
	tun    map[string]*rlctree.Section      // tunable name → copy-tree section
	base   map[string]rlctree.SectionValues // drawn (width = 1) values
	widths map[string]float64               // currently applied widths
}

func newSkewEval(p SkewProblem) (*skewEval, error) {
	t := rlctree.New()
	copies := make([]*rlctree.Section, p.Tree.Len())
	for _, s := range p.Tree.Sections() {
		var parent *rlctree.Section
		if sp := s.Parent(); sp != nil {
			parent = copies[sp.Index()]
		}
		cp, err := t.AddSection(s.Name(), parent, s.R(), s.L(), s.C())
		if err != nil {
			return nil, err
		}
		copies[s.Index()] = cp
	}
	sess, err := engine.NewSession(t)
	if err != nil {
		return nil, err
	}
	ev := &skewEval{
		sess:   sess,
		tun:    make(map[string]*rlctree.Section, len(p.Tunable)),
		base:   make(map[string]rlctree.SectionValues, len(p.Tunable)),
		widths: make(map[string]float64, len(p.Tunable)),
	}
	for _, name := range p.Tunable {
		s := t.Section(name)
		ev.tun[name] = s
		ev.base[name] = rlctree.SectionValues{R: s.R(), L: s.L(), C: s.C()}
		ev.widths[name] = 1
	}
	for _, s := range t.Sections() {
		if s.IsLeaf() {
			ev.leaves = append(ev.leaves, s)
		}
	}
	return ev, nil
}

// setWidth applies width w to the named tunable section (no-op when
// unchanged). C before R so both edits fold into one O(depth) path walk
// at the next query.
func (e *skewEval) setWidth(name string, w float64) error {
	if w == e.widths[name] {
		return nil
	}
	b, sec := e.base[name], e.tun[name]
	if err := e.sess.SetC(sec, b.C*w); err != nil {
		return err
	}
	if err := e.sess.SetR(sec, b.R/w); err != nil {
		return err
	}
	e.widths[name] = w
	return nil
}

// skew returns (max − min) sink EED delay at the applied widths.
func (e *skewEval) skew() (float64, error) {
	minD, maxD := math.Inf(1), 0.0
	for _, lf := range e.leaves {
		d, err := e.sess.DelayAt(lf)
		if err != nil {
			return 0, err
		}
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD - minD, nil
}

// skewOf rebuilds the tree with the given widths applied to the tunable
// sections and returns (max − min) sink EED delay — the one-shot
// evaluation skewEval is verified against.
func (p SkewProblem) skewOf(widths map[string]float64) (float64, error) {
	t := rlctree.New()
	copies := make([]*rlctree.Section, p.Tree.Len())
	for _, s := range p.Tree.Sections() {
		var parent *rlctree.Section
		if sp := s.Parent(); sp != nil {
			parent = copies[sp.Index()]
		}
		r, l, c := s.R(), s.L(), s.C()
		if w, ok := widths[s.Name()]; ok {
			r /= w
			c *= w
		}
		cp, err := t.AddSection(s.Name(), parent, r, l, c)
		if err != nil {
			return 0, err
		}
		copies[s.Index()] = cp
	}
	analyses, err := core.AnalyzeTree(t)
	if err != nil {
		return 0, err
	}
	minD, maxD := math.Inf(1), 0.0
	for _, a := range analyses {
		if !a.Section.IsLeaf() {
			continue
		}
		if a.Delay50 < minD {
			minD = a.Delay50
		}
		if a.Delay50 > maxD {
			maxD = a.Delay50
		}
	}
	return maxD - minD, nil
}

// BalanceSkew minimizes the sink-to-sink delay spread by cyclic coordinate
// descent over the tunable widths with a golden-section line search each —
// viable only because the objective is built from continuous closed forms
// (paper Sec. VI). It stops when a sweep improves the skew by less than
// relTol (default 1e-6) or after maxSweeps (default 30).
func BalanceSkew(p SkewProblem, relTol float64, maxSweeps int) (SkewResult, error) {
	if err := p.validate(); err != nil {
		return SkewResult{}, err
	}
	if relTol <= 0 {
		relTol = 1e-6
	}
	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	ev, err := newSkewEval(p)
	if err != nil {
		return SkewResult{}, err
	}
	widths := make(map[string]float64, len(p.Tunable))
	for _, name := range p.Tunable {
		widths[name] = 1
	}
	before, err := ev.skew()
	if err != nil {
		return SkewResult{}, err
	}
	cur := before
	// Deterministic sweep order.
	order := append([]string(nil), p.Tunable...)
	sort.Strings(order)
	sweeps := 0
	converged := false
	for sweeps < maxSweeps && !converged {
		sweeps++
		prev := cur
		for _, name := range order {
			obj := func(w float64) float64 {
				if err := ev.setWidth(name, w); err != nil {
					return math.Inf(1)
				}
				s, err := ev.skew()
				if err != nil {
					return math.Inf(1)
				}
				return s
			}
			w, s := goldenSection(obj, p.WMin, p.WMax, 1e-7)
			if s <= cur {
				// The line search already evaluated s at w: accept without
				// another whole-sink-set evaluation.
				if err := ev.setWidth(name, w); err != nil {
					return SkewResult{}, err
				}
				widths[name], cur = w, s
			} else if err := ev.setWidth(name, widths[name]); err != nil {
				return SkewResult{}, err
			}
		}
		converged = prev-cur <= relTol*math.Max(prev, 1e-300)
	}
	return SkewResult{Widths: widths, SkewBefore: before, SkewAfter: cur, Sweeps: sweeps, Converged: converged}, nil
}
