package opt

import (
	"fmt"
	"math"
	"sort"

	"eedtree/internal/core"
	"eedtree/internal/rlctree"
)

// Skew balancing: tune the widths of designated branches of a clock tree
// so that all sinks see (nearly) the same equivalent Elmore delay — the
// clock-distribution application the paper cites as a primary consumer of
// fast delay models ([26]: skew under the Elmore model correlates highly
// with SPICE skew; here the metric is the RLC-aware EED instead).

// SkewProblem describes a skew-balancing run. Tunable sections behave as
// wires whose width w scales R → R/w and C → C·w (L is width-insensitive),
// the same first-order model as WireModel.
type SkewProblem struct {
	Tree       *rlctree.Tree
	Tunable    []string // names of width-adjustable sections
	WMin, WMax float64  // width bounds, 0 < WMin ≤ 1 ≤ WMax (w = 1 is the drawn width)
}

func (p SkewProblem) validate() error {
	if p.Tree == nil || p.Tree.Len() == 0 {
		return fmt.Errorf("opt: skew problem needs a tree")
	}
	if len(p.Tunable) == 0 {
		return fmt.Errorf("opt: skew problem needs tunable sections")
	}
	if !(p.WMin > 0) || p.WMin > 1 || p.WMax < 1 {
		return fmt.Errorf("opt: need 0 < WMin ≤ 1 ≤ WMax, got [%g, %g]", p.WMin, p.WMax)
	}
	for _, name := range p.Tunable {
		if p.Tree.Section(name) == nil {
			return fmt.Errorf("opt: tunable section %q not in the tree", name)
		}
	}
	return nil
}

// SkewResult reports the balancing outcome.
type SkewResult struct {
	Widths     map[string]float64 // per tunable section
	SkewBefore float64            // max−min sink delay at all widths = 1 [s]
	SkewAfter  float64            // after optimization [s]
	Sweeps     int
}

// skewOf rebuilds the tree with the given widths applied to the tunable
// sections and returns (max − min) sink EED delay.
func (p SkewProblem) skewOf(widths map[string]float64) (float64, error) {
	t := rlctree.New()
	copies := make([]*rlctree.Section, p.Tree.Len())
	for _, s := range p.Tree.Sections() {
		var parent *rlctree.Section
		if sp := s.Parent(); sp != nil {
			parent = copies[sp.Index()]
		}
		r, l, c := s.R(), s.L(), s.C()
		if w, ok := widths[s.Name()]; ok {
			r /= w
			c *= w
		}
		cp, err := t.AddSection(s.Name(), parent, r, l, c)
		if err != nil {
			return 0, err
		}
		copies[s.Index()] = cp
	}
	analyses, err := core.AnalyzeTree(t)
	if err != nil {
		return 0, err
	}
	minD, maxD := math.Inf(1), 0.0
	for _, a := range analyses {
		if !a.Section.IsLeaf() {
			continue
		}
		if a.Delay50 < minD {
			minD = a.Delay50
		}
		if a.Delay50 > maxD {
			maxD = a.Delay50
		}
	}
	return maxD - minD, nil
}

// BalanceSkew minimizes the sink-to-sink delay spread by cyclic coordinate
// descent over the tunable widths with a golden-section line search each —
// viable only because the objective is built from continuous closed forms
// (paper Sec. VI). It stops when a sweep improves the skew by less than
// relTol (default 1e-6) or after maxSweeps (default 30).
func BalanceSkew(p SkewProblem, relTol float64, maxSweeps int) (SkewResult, error) {
	if err := p.validate(); err != nil {
		return SkewResult{}, err
	}
	if relTol <= 0 {
		relTol = 1e-6
	}
	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	widths := make(map[string]float64, len(p.Tunable))
	for _, name := range p.Tunable {
		widths[name] = 1
	}
	before, err := p.skewOf(widths)
	if err != nil {
		return SkewResult{}, err
	}
	cur := before
	// Deterministic sweep order.
	order := append([]string(nil), p.Tunable...)
	sort.Strings(order)
	sweeps := 0
	for ; sweeps < maxSweeps; sweeps++ {
		prev := cur
		for _, name := range order {
			orig := widths[name]
			obj := func(w float64) float64 {
				widths[name] = w
				s, err := p.skewOf(widths)
				if err != nil {
					return math.Inf(1)
				}
				return s
			}
			w := goldenSection(obj, p.WMin, p.WMax, 1e-7)
			if s := obj(w); s <= cur {
				widths[name], cur = w, s
			} else {
				widths[name] = orig
			}
		}
		if prev-cur <= relTol*math.Max(prev, 1e-300) {
			sweeps++
			break
		}
	}
	return SkewResult{Widths: widths, SkewBefore: before, SkewAfter: cur, Sweeps: sweeps}, nil
}
