package opt

import "fmt"

// Delay/energy trade-off for repeater insertion. The authors' follow-on
// work on RLC repeater insertion emphasizes that inductance shifts the
// delay-optimal repeater count downward, which also saves switching
// energy; this sweep exposes the whole front so callers can trade a few
// percent of delay for substantial energy.

// RepeaterPoint is one candidate repeated-line design.
type RepeaterPoint struct {
	K          int     // repeater count
	Size       float64 // delay-optimal size at this K
	TotalDelay float64 // [s]
	Energy     float64 // switching energy per transition [J]
	Pareto     bool    // true if no other point is better in both metrics
}

// SwitchingEnergy returns the CV² switching energy per output transition
// of a repeated line: the full wire capacitance plus every repeater's
// input capacitance, at the given supply.
func SwitchingEnergy(line LineSpec, rep Repeater, k int, size, vdd float64) float64 {
	cTotal := line.C + float64(k)*rep.CIn*size
	return cTotal * vdd * vdd
}

// RepeaterPareto sweeps k = 1..maxK, sizing each candidate for minimum
// delay, and returns every point with its switching energy and Pareto
// flag (points not dominated in both delay and energy).
func RepeaterPareto(line LineSpec, rep Repeater, maxK int, sizeMin, sizeMax, vdd float64) ([]RepeaterPoint, error) {
	if err := line.validate(); err != nil {
		return nil, err
	}
	if err := rep.validate(); err != nil {
		return nil, err
	}
	if maxK < 1 {
		return nil, fmt.Errorf("opt: maxK must be ≥ 1, got %d", maxK)
	}
	if !(sizeMin > 0) || !(sizeMax > sizeMin) {
		return nil, fmt.Errorf("opt: need 0 < sizeMin < sizeMax, got [%g, %g]", sizeMin, sizeMax)
	}
	if !(vdd > 0) {
		return nil, fmt.Errorf("opt: vdd must be positive, got %g", vdd)
	}
	points := make([]RepeaterPoint, 0, maxK)
	for k := 1; k <= maxK; k++ {
		stage, err := stageObjective(line, rep, k, sizeMin)
		if err != nil {
			return nil, err
		}
		size, sd := goldenSection(stage, sizeMin, sizeMax, 1e-6)
		points = append(points, RepeaterPoint{
			K:          k,
			Size:       size,
			TotalDelay: float64(k) * sd,
			Energy:     SwitchingEnergy(line, rep, k, size, vdd),
		})
	}
	// Pareto flags: a point is dominated if another is ≤ in both metrics
	// and < in at least one.
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			if points[j].TotalDelay <= points[i].TotalDelay && points[j].Energy <= points[i].Energy &&
				(points[j].TotalDelay < points[i].TotalDelay || points[j].Energy < points[i].Energy) {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
	return points, nil
}
