package opt

import (
	"math"
	"math/rand"
	"testing"
)

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestSizingEvalMatchesRebuild: the incremental sizing evaluator must agree
// bit for bit with the from-scratch evaluation after arbitrary width-edit
// sequences — the opt-level face of the internal/incr contract.
func TestSizingEvalMatchesRebuild(t *testing.T) {
	p := testSizing
	widths := make([]float64, p.Segments)
	for i := range widths {
		widths[i] = 1
	}
	ev, err := newSizingEval(p, widths)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 200; step++ {
		i := rng.Intn(p.Segments)
		w := p.WMin + rng.Float64()*(p.WMax-p.WMin)
		if err := ev.setWidth(i, w); err != nil {
			t.Fatal(err)
		}
		widths[i] = w
		got, err := ev.delay()
		if err != nil {
			t.Fatal(err)
		}
		want, err := delayRebuild(p, widths)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEq(got, want) {
			t.Fatalf("step %d: incremental delay %x != rebuild %x",
				step, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestOptimizeWidthsMatchesRebuildTwin: both twins run the identical
// coordinate-descent core over bit-identical objectives, so they must take
// the same descent path and return the same result to the last bit.
func TestOptimizeWidthsMatchesRebuildTwin(t *testing.T) {
	inc, err := OptimizeWidths(testSizing, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reb, err := optimizeWidthsRebuild(testSizing, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEq(inc.Delay, reb.Delay) {
		t.Fatalf("delays diverge: %x vs %x",
			math.Float64bits(inc.Delay), math.Float64bits(reb.Delay))
	}
	if inc.Sweeps != reb.Sweeps || inc.Converged != reb.Converged {
		t.Fatalf("descent paths diverge: %d/%v vs %d/%v sweeps",
			inc.Sweeps, inc.Converged, reb.Sweeps, reb.Converged)
	}
	for i := range inc.Widths {
		if !bitsEq(inc.Widths[i], reb.Widths[i]) {
			t.Fatalf("width %d diverges: %g vs %g", i, inc.Widths[i], reb.Widths[i])
		}
	}
	if !inc.Converged {
		t.Fatal("test sizing problem should converge within the default sweep bound")
	}
	if inc.Sweeps < 1 {
		t.Fatal("no sweeps recorded")
	}
}

// TestStageEvalMatchesStageDelay: repeated size edits on a live stage
// session agree bit for bit with from-scratch stage evaluations.
func TestStageEvalMatchesStageDelay(t *testing.T) {
	const k = 3
	ev, err := newStageEval(testLine, testRep, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 100; step++ {
		size := 0.5 + rng.Float64()*200
		got, err := ev.delay(size)
		if err != nil {
			t.Fatal(err)
		}
		want, err := StageDelay(testLine, testRep, k, size)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEq(got, want) {
			t.Fatalf("step %d (size %g): incremental stage delay %x != from-scratch %x",
				step, size, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if _, err := ev.delay(0); err == nil {
		t.Fatal("size 0 must fail")
	}
}

// TestSkewEvalMatchesSkewOf: the session-backed skew objective agrees bit
// for bit with the rebuild-per-candidate evaluation.
func TestSkewEvalMatchesSkewOf(t *testing.T) {
	tree, tunable := imbalancedClockTree(t)
	p := SkewProblem{Tree: tree, Tunable: tunable, WMin: 0.4, WMax: 6}
	ev, err := newSkewEval(p)
	if err != nil {
		t.Fatal(err)
	}
	widths := make(map[string]float64, len(tunable))
	for _, name := range tunable {
		widths[name] = 1
	}
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 60; step++ {
		name := tunable[rng.Intn(len(tunable))]
		w := p.WMin + rng.Float64()*(p.WMax-p.WMin)
		if err := ev.setWidth(name, w); err != nil {
			t.Fatal(err)
		}
		widths[name] = w
		got, err := ev.skew()
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.skewOf(widths)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEq(got, want) {
			t.Fatalf("step %d: incremental skew %x != rebuild %x",
				step, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestDelayUsesSessionPathConsistency: the public one-shot Delay and an
// incremental session seeded at the same widths agree bit for bit.
func TestDelayUsesSessionPathConsistency(t *testing.T) {
	widths := make([]float64, testSizing.Segments)
	for i := range widths {
		widths[i] = 2
	}
	want, err := testSizing.Delay(widths)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := newSizingEval(testSizing, widths)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.delay()
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEq(got, want) {
		t.Fatalf("session delay %x != one-shot %x",
			math.Float64bits(got), math.Float64bits(want))
	}
}
