package opt

import (
	"math"
	"testing"
)

func TestSwitchingEnergy(t *testing.T) {
	got := SwitchingEnergy(testLine, testRep, 3, 10, 1.0)
	want := (testLine.C + 3*testRep.CIn*10) * 1 * 1
	if math.Abs(got-want) > 1e-20 {
		t.Fatalf("energy = %g, want %g", got, want)
	}
}

func TestRepeaterParetoValidation(t *testing.T) {
	if _, err := RepeaterPareto(LineSpec{}, testRep, 4, 1, 10, 1); err == nil {
		t.Fatal("bad line must fail")
	}
	if _, err := RepeaterPareto(testLine, Repeater{}, 4, 1, 10, 1); err == nil {
		t.Fatal("bad repeater must fail")
	}
	if _, err := RepeaterPareto(testLine, testRep, 0, 1, 10, 1); err == nil {
		t.Fatal("maxK 0 must fail")
	}
	if _, err := RepeaterPareto(testLine, testRep, 4, 10, 1, 1); err == nil {
		t.Fatal("inverted sizes must fail")
	}
	if _, err := RepeaterPareto(testLine, testRep, 4, 1, 10, 0); err == nil {
		t.Fatal("vdd 0 must fail")
	}
}

func TestRepeaterParetoFront(t *testing.T) {
	points, err := RepeaterPareto(testLine, testRep, 8, 0.5, 300, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("got %d points", len(points))
	}
	// Energy must grow strictly with k (each repeater adds input cap).
	for i := 1; i < len(points); i++ {
		if points[i].Energy <= points[i-1].Energy {
			t.Fatalf("energy not increasing at k=%d", points[i].K)
		}
	}
	// The delay-optimal point and the k=1 (lowest-energy candidate among
	// sized designs need not be k=1, but) the global delay minimum must be
	// flagged Pareto.
	best := 0
	for i, p := range points {
		if p.TotalDelay < points[best].TotalDelay {
			best = i
		}
	}
	if !points[best].Pareto {
		t.Fatal("delay-optimal point must be on the front")
	}
	// Every dominated point must really be dominated.
	for i, p := range points {
		if p.Pareto {
			continue
		}
		found := false
		for j, q := range points {
			if i != j && q.TotalDelay <= p.TotalDelay && q.Energy <= p.Energy {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point k=%d marked dominated but is not", p.K)
		}
	}
	// At least two distinct designs on the front (a real trade-off).
	front := 0
	for _, p := range points {
		if p.Pareto {
			front++
		}
	}
	if front < 2 {
		t.Fatalf("degenerate front with %d points", front)
	}
}
