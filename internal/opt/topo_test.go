package opt

import (
	"math"
	"testing"

	"eedtree/internal/core"
	"eedtree/internal/rlctree"
)

// testTopoRep is a small topology-insertion problem on the shared test
// line: long enough that at least one repeater pays off, small enough to
// keep the twin-equivalence tests quick.
var testTopoRep = TopoRepeaterProblem{
	Line:    LineSpec{R: 600, L: 8e-9, C: 4e-12, Sections: 8},
	Rep:     Repeater{ROut: 500, CIn: 12e-15, TIntrinsic: 2e-12},
	RSource: 120,
	CLoad:   60e-15,
	MaxK:    3,
	SizeMin: 0.5,
	SizeMax: 100,
}

// testTopology has a heavy critical sink at the far end of the trunk and
// light sinks clustered near it: with cheap stubs, re-homing the light
// sinks to earlier taps takes their capacitance off the critical path,
// so the shallow/light pass has real moves to find.
var testTopology = TopologyProblem{
	Trunk:       LineSpec{R: 400, L: 6e-9, C: 3e-12, Sections: 6},
	RSource:     150,
	StubRPerLen: 150,
	StubLPerLen: 1e-9,
	StubCPerLen: 0.05e-12,
	Lambda:      0,
	Sinks: []SinkSpec{
		{Name: "s0", Pos: 0.12, CLoad: 50e-15},
		{Name: "s1", Pos: 0.41, CLoad: 50e-15},
		{Name: "s2", Pos: 0.77, CLoad: 50e-15},
		{Name: "s3", Pos: 0.95, CLoad: 50e-15},
		{Name: "s4", Pos: 1.0, CLoad: 200e-15},
	},
}

// TestInsertRepeatersTopoMatchesRebuild is the tentpole equivalence
// claim for the insertion optimizer: the incremental session twin and the
// rebuild twin take identical greedy decisions and return bit-identical
// plans, because every delay either path computes is bit-identical.
func TestInsertRepeatersTopoMatchesRebuild(t *testing.T) {
	for _, reseg := range []int{1, 3} {
		p := testTopoRep
		p.Resegment = reseg
		inc, err := InsertRepeatersTopo(p)
		if err != nil {
			t.Fatal(err)
		}
		reb, err := InsertRepeatersTopoRebuild(p)
		if err != nil {
			t.Fatal(err)
		}
		if inc.K != reb.K || inc.Evals != reb.Evals {
			t.Fatalf("reseg %d: twins diverged: K %d vs %d, evals %d vs %d",
				reseg, inc.K, reb.K, inc.Evals, reb.Evals)
		}
		if !bitsEq(inc.TotalDelay, reb.TotalDelay) {
			t.Fatalf("reseg %d: total delay %x != %x", reseg,
				math.Float64bits(inc.TotalDelay), math.Float64bits(reb.TotalDelay))
		}
		if len(inc.Placements) != len(reb.Placements) {
			t.Fatalf("reseg %d: placement counts differ", reseg)
		}
		for i := range inc.Placements {
			if inc.Placements[i].After != reb.Placements[i].After ||
				!bitsEq(inc.Placements[i].Size, reb.Placements[i].Size) {
				t.Fatalf("reseg %d: placement %d differs: %+v vs %+v",
					reseg, i, inc.Placements[i], reb.Placements[i])
			}
		}
		for i := range inc.StageDelays {
			if !bitsEq(inc.StageDelays[i], reb.StageDelays[i]) {
				t.Fatalf("reseg %d: stage %d delay differs", reseg, i)
			}
		}
	}
}

// TestInsertRepeatersTopoImprovesDelay pins the optimizer's point: on a
// long resistive line, inserting repeaters strictly beats the bare line.
func TestInsertRepeatersTopoImprovesDelay(t *testing.T) {
	bare := testTopoRep
	bare.MaxK = 0
	base, err := InsertRepeatersTopo(bare)
	if err != nil {
		t.Fatal(err)
	}
	if base.K != 0 || len(base.StageDelays) != 1 {
		t.Fatalf("MaxK=0 must return the bare line: %+v", base)
	}
	plan, err := InsertRepeatersTopo(testTopoRep)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K < 1 {
		t.Fatalf("expected ≥ 1 repeater on the long line, got %+v", plan)
	}
	if plan.K != len(plan.Placements) || plan.K+1 != len(plan.StageDelays) {
		t.Fatalf("inconsistent plan shape: %+v", plan)
	}
	if !(plan.TotalDelay < base.TotalDelay) {
		t.Fatalf("repeaters did not improve delay: %g vs bare %g",
			plan.TotalDelay, base.TotalDelay)
	}
	sum := float64(plan.K) * testTopoRep.Rep.TIntrinsic
	for _, d := range plan.StageDelays {
		sum += d
	}
	if !bitsEq(sum, plan.TotalDelay) {
		t.Fatalf("TotalDelay %g does not equal Σ stages + K·TIntrinsic %g",
			plan.TotalDelay, sum)
	}
	for _, pl := range plan.Placements {
		if !(pl.Size >= testTopoRep.SizeMin && pl.Size <= testTopoRep.SizeMax) {
			t.Fatalf("placement size %g outside search range", pl.Size)
		}
	}
	if plan.Evals == 0 {
		t.Fatal("optimizer reported zero objective evaluations")
	}
}

func TestInsertRepeatersTopoValidation(t *testing.T) {
	cases := []func(*TopoRepeaterProblem){
		func(p *TopoRepeaterProblem) { p.Line.Sections = 0 },
		func(p *TopoRepeaterProblem) { p.Rep.ROut = 0 },
		func(p *TopoRepeaterProblem) { p.RSource = -1 },
		func(p *TopoRepeaterProblem) { p.CLoad = math.NaN() },
		func(p *TopoRepeaterProblem) { p.MaxK = -1 },
		func(p *TopoRepeaterProblem) { p.SizeMin = 0 },
		func(p *TopoRepeaterProblem) { p.SizeMax = p.SizeMin },
		func(p *TopoRepeaterProblem) { p.Resegment = -2 },
	}
	for i, mut := range cases {
		p := testTopoRep
		mut(&p)
		if _, err := InsertRepeatersTopo(p); err == nil {
			t.Fatalf("case %d: invalid problem accepted", i)
		}
	}
}

// TestExploreTopologiesMatchesRebuild pins twin equivalence for the
// sink-regrouping explorer, including the move/pass trajectory — the
// twins must not merely land on the same answer but take the same path.
func TestExploreTopologiesMatchesRebuild(t *testing.T) {
	for _, lambda := range []float64{0, 2e-10} {
		p := testTopology
		p.Lambda = lambda
		inc, err := ExploreTopologies(p)
		if err != nil {
			t.Fatal(err)
		}
		reb, err := ExploreTopologiesRebuild(p)
		if err != nil {
			t.Fatal(err)
		}
		if inc.Passes != reb.Passes || inc.Moves != reb.Moves || inc.Evals != reb.Evals {
			t.Fatalf("lambda %g: trajectories diverged: %+v vs %+v", lambda, inc, reb)
		}
		for i := range inc.Taps {
			if inc.Taps[i] != reb.Taps[i] {
				t.Fatalf("lambda %g: sink %d tap %d vs %d", lambda, i, inc.Taps[i], reb.Taps[i])
			}
		}
		if !bitsEq(inc.MaxDelay, reb.MaxDelay) || !bitsEq(inc.StubLength, reb.StubLength) ||
			!bitsEq(inc.Cost, reb.Cost) {
			t.Fatalf("lambda %g: cost terms differ: %+v vs %+v", lambda, inc, reb)
		}
	}
}

// TestExploreTopologiesResultIsConsistent rebuilds the explorer's final
// assignment from scratch and checks the reported cost terms against it:
// the structural churn of accepted and undone moves must leave a tree
// whose delays agree with a clean build of the same topology (values, not
// bits — the churned tree's section order differs from a clean build's,
// so sums may differ in the last ulp).
func TestExploreTopologiesResultIsConsistent(t *testing.T) {
	p := testTopology
	res, err := ExploreTopologies(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves == 0 {
		t.Fatal("expected the shallow/light pass to accept at least one move")
	}
	if len(res.Taps) != len(p.Sinks) {
		t.Fatalf("want %d taps, got %d", len(p.Sinks), len(res.Taps))
	}
	n := p.Trunk.Sections
	tree := rlctree.New()
	parent := tree.MustAddSection("drv", nil, p.RSource, 0, 0)
	trunk := make([]*rlctree.Section, n)
	for i := 0; i < n; i++ {
		trunk[i] = tree.MustAddSection("t"+itoa(i+1), parent,
			p.Trunk.R/float64(n), p.Trunk.L/float64(n), p.Trunk.C/float64(n))
		parent = trunk[i]
	}
	maxDelay := math.Inf(-1)
	stub := 0.0
	for i, s := range p.Sinks {
		tapPos := float64(res.Taps[i]+1) / float64(n)
		length := math.Abs(s.Pos - tapPos)
		stub += length
		leaf := tree.MustAddSection(s.Name, trunk[res.Taps[i]],
			p.StubRPerLen*length, p.StubLPerLen*length, p.StubCPerLen*length+s.CLoad)
		m, err := core.AtNode(leaf)
		if err != nil {
			t.Fatal(err)
		}
		if d := m.Delay50(); d > maxDelay {
			maxDelay = d
		}
	}
	if math.Abs(maxDelay-res.MaxDelay) > 1e-9*maxDelay {
		t.Fatalf("reported MaxDelay %g disagrees with clean rebuild %g", res.MaxDelay, maxDelay)
	}
	if !bitsEq(stub, res.StubLength) {
		t.Fatalf("reported StubLength %g disagrees with recomputed %g", res.StubLength, stub)
	}
	if !bitsEq(res.Cost, res.MaxDelay+p.Lambda*res.StubLength) {
		t.Fatalf("Cost %g is not MaxDelay + Lambda·StubLength", res.Cost)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestExploreTopologiesValidation(t *testing.T) {
	cases := []func(*TopologyProblem){
		func(p *TopologyProblem) { p.Trunk.Sections = 0 },
		func(p *TopologyProblem) { p.RSource = -1 },
		func(p *TopologyProblem) { p.Sinks = nil },
		func(p *TopologyProblem) { p.Sinks[0].Name = "" },
		func(p *TopologyProblem) { p.Sinks[0].Pos = 1.5 },
		func(p *TopologyProblem) { p.Sinks[0].CLoad = 0 },
		func(p *TopologyProblem) { p.StubRPerLen = -1 },
		func(p *TopologyProblem) { p.Lambda = math.NaN() },
		func(p *TopologyProblem) { p.MaxPasses = -1 },
	}
	for i, mut := range cases {
		p := testTopology
		p.Sinks = append([]SinkSpec(nil), testTopology.Sinks...)
		mut(&p)
		if _, err := ExploreTopologies(p); err == nil {
			t.Fatalf("case %d: invalid problem accepted", i)
		}
	}
}
