package opt

import (
	"testing"

	"eedtree/internal/rlctree"
)

// imbalancedClockTree builds a 3-level H-tree whose left-half sinks carry
// extra latch load, then exposes the four leaf branches as tunable.
func imbalancedClockTree(t *testing.T) (*rlctree.Tree, []string) {
	t.Helper()
	tree, err := rlctree.HTree(3, rlctree.SectionValues{R: 20, L: 2e-9, C: 120e-15}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	var tunable []string
	for i, lf := range leaves {
		load := 30e-15
		if i < len(leaves)/2 {
			load = 90e-15 // imbalance
		}
		if _, err := tree.AddSection("latch_"+lf.Name(), lf, 1, 0, load); err != nil {
			t.Fatal(err)
		}
		tunable = append(tunable, lf.Name())
	}
	return tree, tunable
}

func TestBalanceSkewValidation(t *testing.T) {
	tree, tunable := imbalancedClockTree(t)
	cases := []SkewProblem{
		{},
		{Tree: tree},
		{Tree: tree, Tunable: tunable, WMin: 0, WMax: 4},
		{Tree: tree, Tunable: tunable, WMin: 2, WMax: 4},     // WMin > 1
		{Tree: tree, Tunable: tunable, WMin: 0.5, WMax: 0.8}, // WMax < 1
		{Tree: tree, Tunable: []string{"nope"}, WMin: 0.5, WMax: 4},
	}
	for i, p := range cases {
		if _, err := BalanceSkew(p, 0, 0); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBalanceSkewReducesSkew(t *testing.T) {
	tree, tunable := imbalancedClockTree(t)
	p := SkewProblem{Tree: tree, Tunable: tunable, WMin: 0.4, WMax: 6}
	res, err := BalanceSkew(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkewBefore <= 0 {
		t.Fatalf("imbalanced tree has zero initial skew: %g", res.SkewBefore)
	}
	if res.SkewAfter > 0.4*res.SkewBefore {
		t.Fatalf("skew only reduced from %g to %g", res.SkewBefore, res.SkewAfter)
	}
	for name, w := range res.Widths {
		if w < p.WMin || w > p.WMax {
			t.Fatalf("width %s = %g outside bounds", name, w)
		}
	}
	// The solution must be asymmetric: the two sides end at different
	// widths. (Which side widens depends on whether a branch's own added
	// capacitance or its reduced resistance dominates — for lightly loaded
	// leaf wires, widening *slows* the branch, so the optimizer may widen
	// the fast side rather than the slow one.)
	heavy := res.Widths[tunable[0]]
	light := res.Widths[tunable[len(tunable)-1]]
	if diff := heavy - light; diff > -1e-3 && diff < 1e-3 {
		t.Fatalf("expected asymmetric widths, got heavy %g ≈ light %g", heavy, light)
	}
}

func TestBalanceSkewAlreadyBalanced(t *testing.T) {
	tree, err := rlctree.HTree(3, rlctree.SectionValues{R: 20, L: 2e-9, C: 120e-15}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	var tunable []string
	for _, lf := range tree.Leaves() {
		tunable = append(tunable, lf.Name())
	}
	res, err := BalanceSkew(SkewProblem{Tree: tree, Tunable: tunable, WMin: 0.5, WMax: 4}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkewBefore > 1e-18 {
		t.Fatalf("balanced tree reports skew %g", res.SkewBefore)
	}
	if res.SkewAfter > res.SkewBefore+1e-18 {
		t.Fatalf("optimizer worsened a balanced tree: %g → %g", res.SkewBefore, res.SkewAfter)
	}
}
