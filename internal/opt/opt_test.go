package opt

import (
	"math"
	"testing"
)

// A 10 mm copper global wire, roughly: 26 Ω/mm·0.26... use representative
// totals: R = 260 Ω, L = 5 nH, C = 2 pF.
var testLine = LineSpec{R: 260, L: 5e-9, C: 2e-12, Sections: 12}

// A unit repeater comparable to a small inverter.
var testRep = Repeater{ROut: 3000, CIn: 5e-15, TIntrinsic: 5e-12}

func TestGoldenSection(t *testing.T) {
	f := func(x float64) float64 { return (x - 2.5) * (x - 2.5) }
	min, fmin := goldenSection(f, 0, 10, 1e-10)
	if math.Abs(min-2.5) > 1e-6 {
		t.Fatalf("golden section found %g, want 2.5", min)
	}
	// The returned value must be the objective at the returned argument —
	// the contract that lets callers skip re-evaluation.
	if fmin != f(min) {
		t.Fatalf("returned value %g is not f(x) = %g", fmin, f(min))
	}
}

func TestStageDelayValidation(t *testing.T) {
	if _, err := StageDelay(LineSpec{}, testRep, 1, 1); err == nil {
		t.Fatal("bad line must fail")
	}
	if _, err := StageDelay(testLine, Repeater{}, 1, 1); err == nil {
		t.Fatal("bad repeater must fail")
	}
	if _, err := StageDelay(testLine, testRep, 0, 1); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := StageDelay(testLine, testRep, 1, 0); err == nil {
		t.Fatal("size=0 must fail")
	}
}

func TestStageDelaySizeTradeoff(t *testing.T) {
	// A larger repeater lowers driver resistance: for a resistive line the
	// stage delay at size 10 must be below size 0.1.
	small, err := StageDelay(testLine, testRep, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := StageDelay(testLine, testRep, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if large >= small {
		t.Fatalf("size 10 stage delay %g not below size 0.1 delay %g", large, small)
	}
}

func TestInsertRepeatersImprovesLongLine(t *testing.T) {
	plan, err := InsertRepeaters(testLine, testRep, 8, 0.5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K < 1 || plan.K > 8 {
		t.Fatalf("plan K = %d", plan.K)
	}
	// Unrepeated delay with the same (optimally sized) driver:
	single := math.Inf(1)
	for _, s := range []float64{1, 10, 50, 100, 300} {
		if d, err := StageDelay(testLine, testRep, 1, s); err == nil && d < single {
			single = d
		}
	}
	if plan.TotalDelay > single*1.0001 {
		t.Fatalf("optimized plan (%g s) worse than best single stage (%g s)", plan.TotalDelay, single)
	}
	if plan.TotalDelay <= 0 || plan.StageDelay <= 0 {
		t.Fatal("degenerate plan")
	}
	if math.Abs(plan.TotalDelay-float64(plan.K)*plan.StageDelay) > 1e-15 {
		t.Fatal("TotalDelay must be K·StageDelay")
	}
}

// TestInductanceReducesOptimalRepeaterCount: the headline result of
// RLC-aware repeater insertion — accounting for inductance calls for
// fewer repeaters than the RC-only analysis of the same line.
func TestInductanceReducesOptimalRepeaterCount(t *testing.T) {
	rcLine := testLine
	rcLine.L = 0
	rlc, err := InsertRepeaters(testLine, testRep, 10, 0.5, 300)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := InsertRepeaters(rcLine, testRep, 10, 0.5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if rlc.K > rc.K {
		t.Fatalf("RLC-aware plan uses %d repeaters, RC-only %d — inductance should not increase the count", rlc.K, rc.K)
	}
}

func TestInsertRepeatersValidation(t *testing.T) {
	if _, err := InsertRepeaters(testLine, testRep, 0, 1, 10); err == nil {
		t.Fatal("maxK=0 must fail")
	}
	if _, err := InsertRepeaters(testLine, testRep, 4, 10, 1); err == nil {
		t.Fatal("inverted size range must fail")
	}
}

var testSizing = SizingProblem{
	Segments: 8,
	Model: WireModel{
		RUnit:     40,     // Ω·(unit width) per segment
		CAreaUnit: 30e-15, // F per unit width per segment
		CFringe:   10e-15, // F per segment
		LUnit:     0.6e-9, // H per segment
	},
	WMin:    0.5,
	WMax:    4,
	RDriver: 100,
	CLoad:   50e-15,
}

func TestSizingDelayValidation(t *testing.T) {
	if _, err := testSizing.Delay([]float64{1}); err == nil {
		t.Fatal("wrong width count must fail")
	}
	w := make([]float64, testSizing.Segments)
	for i := range w {
		w[i] = 1
	}
	w[0] = 99
	if _, err := testSizing.Delay(w); err == nil {
		t.Fatal("out-of-range width must fail")
	}
	bad := testSizing
	bad.WMin = 0
	if _, err := OptimizeWidths(bad, 0, 0); err == nil {
		t.Fatal("invalid problem must fail")
	}
}

func TestOptimizeWidthsImproves(t *testing.T) {
	uniform := make([]float64, testSizing.Segments)
	for i := range uniform {
		uniform[i] = math.Sqrt(testSizing.WMin * testSizing.WMax)
	}
	base, err := testSizing.Delay(uniform)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeWidths(testSizing, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > base {
		t.Fatalf("optimizer worsened delay: %g > %g", res.Delay, base)
	}
	if res.Sweeps < 1 {
		t.Fatal("no sweeps recorded")
	}
	// Verify the reported delay matches a fresh evaluation.
	check, err := testSizing.Delay(res.Widths)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(check-res.Delay) > 1e-18 {
		t.Fatalf("reported delay %g != evaluated %g", res.Delay, check)
	}
}

// TestOptimalWidthsTaper: the classical wire-sizing result — optimal
// widths are (weakly) wider near the driver and taper toward the load.
func TestOptimalWidthsTaper(t *testing.T) {
	res, err := OptimizeWidths(testSizing, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Widths); i++ {
		if res.Widths[i] > res.Widths[i-1]*1.05 {
			t.Fatalf("widths do not taper: w[%d]=%g > w[%d]=%g", i, res.Widths[i], i-1, res.Widths[i-1])
		}
	}
}
