// Package opt implements the VLSI synthesis applications the paper
// motivates its delay model with (Secs. I and VI): repeater (buffer)
// insertion in inductive lines and continuous wire sizing. Both optimize
// the closed-form equivalent Elmore delay directly — possible because the
// model is one continuous analytic expression across all damping regimes,
// evaluable in O(n) per candidate, exactly the properties that made the
// classical Elmore delay the standard objective for RC synthesis.
package opt

import (
	"fmt"
	"math"

	"eedtree/internal/core"
	"eedtree/internal/rlctree"
)

// goldenSection minimizes a unimodal scalar function on [lo, hi] to the
// given relative tolerance and returns the best evaluated argument
// together with its function value, so callers never need to re-evaluate
// the objective after the line search (one saved evaluation per search —
// which, inside a coordinate-descent sweep, is one saved delay evaluation
// per segment per sweep).
func goldenSection(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 200 && (b-a) > tol*(math.Abs(a)+math.Abs(b)+1e-300); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	if fc <= fd {
		return c, fc
	}
	return d, fd
}

// Repeater characterizes a repeater (buffer) at unit size: output
// resistance ROut, input capacitance CIn and intrinsic (unloaded) delay
// TIntrinsic. Sizing by s scales ROut → ROut/s and CIn → CIn·s, the
// standard first-order CMOS scaling model.
type Repeater struct {
	ROut       float64 // ohms at unit size, > 0
	CIn        float64 // farads at unit size, > 0
	TIntrinsic float64 // seconds, ≥ 0
}

func (r Repeater) validate() error {
	if !(r.ROut > 0) || !(r.CIn > 0) || r.TIntrinsic < 0 ||
		math.IsNaN(r.ROut+r.CIn+r.TIntrinsic) {
		return fmt.Errorf("opt: invalid repeater %+v", r)
	}
	return nil
}

// LineSpec describes a uniform interconnect line by its total resistance,
// inductance and capacitance, discretized into Sections RLC sections for
// delay evaluation (10–20 sections model a distributed line well).
type LineSpec struct {
	R, L, C  float64 // line totals: ohms, henries, farads
	Sections int
}

func (l LineSpec) validate() error {
	if l.Sections < 1 {
		return fmt.Errorf("opt: line needs ≥ 1 section, got %d", l.Sections)
	}
	if !(l.R >= 0) || !(l.L >= 0) || !(l.C > 0) {
		return fmt.Errorf("opt: invalid line totals R=%g L=%g C=%g", l.R, l.L, l.C)
	}
	return nil
}

// segmentTree builds driver → line → load as an RLC tree: a zero-C driver
// section carrying the source resistance, n line sections, and a zero-
// impedance leaf carrying the load capacitance.
func segmentTree(rDriver float64, line LineSpec, cLoad float64) (*rlctree.Tree, *rlctree.Section, error) {
	t := rlctree.New()
	parent, err := t.AddSection("drv", nil, rDriver, 0, 0)
	if err != nil {
		return nil, nil, err
	}
	n := line.Sections
	for i := 1; i <= n; i++ {
		s, err := t.AddSection(fmt.Sprintf("w%d", i), parent,
			line.R/float64(n), line.L/float64(n), line.C/float64(n))
		if err != nil {
			return nil, nil, err
		}
		parent = s
	}
	sink, err := t.AddSection("load", parent, 0, 0, cLoad)
	if err != nil {
		return nil, nil, err
	}
	return t, sink, nil
}

// StageDelay returns the equivalent-Elmore 50% delay of one repeater stage
// driving 1/k of the line into the next repeater's input, at repeater
// size. The driver is modeled by its output resistance (its inductance is
// negligible); TIntrinsic is added per stage.
func StageDelay(line LineSpec, rep Repeater, k int, size float64) (float64, error) {
	if err := line.validate(); err != nil {
		return 0, err
	}
	if err := rep.validate(); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("opt: k must be ≥ 1, got %d", k)
	}
	if !(size > 0) {
		return 0, fmt.Errorf("opt: size must be > 0, got %g", size)
	}
	seg := LineSpec{
		R:        line.R / float64(k),
		L:        line.L / float64(k),
		C:        line.C / float64(k),
		Sections: line.Sections,
	}
	_, sink, err := segmentTree(rep.ROut/size, seg, rep.CIn*size)
	if err != nil {
		return 0, err
	}
	m, err := core.AtNode(sink)
	if err != nil {
		return 0, err
	}
	return m.Delay50() + rep.TIntrinsic, nil
}

// stageObjective returns the golden-section objective over repeater size
// for a k-stage split of the line, evaluated on a live incremental session
// (two element edits and one O(depth) query per candidate instead of a
// tree rebuild and full resweep).
func stageObjective(line LineSpec, rep Repeater, k int, sizeMin float64) (func(float64) float64, error) {
	ev, err := newStageEval(line, rep, k, sizeMin)
	if err != nil {
		return nil, err
	}
	return func(size float64) float64 {
		d, err := ev.delay(size)
		if err != nil {
			return math.Inf(1)
		}
		return d
	}, nil
}

// RepeaterPlan is the result of repeater-insertion optimization.
type RepeaterPlan struct {
	K          int     // number of repeater stages (1 = no intermediate repeaters)
	Size       float64 // repeater size relative to the unit repeater
	StageDelay float64 // delay of one stage [s]
	TotalDelay float64 // K·StageDelay [s]
}

// InsertRepeaters finds the number and common size of repeaters that
// minimize the total equivalent-Elmore delay of a repeated line, sweeping
// k = 1..maxK with a golden-section search over the repeater size in
// [sizeMin, sizeMax] for each k. This mirrors the uniform repeater
// insertion methodology used for RLC lines in the follow-on work by the
// same authors: inductance reduces the optimal number of repeaters
// relative to the RC-only prediction.
func InsertRepeaters(line LineSpec, rep Repeater, maxK int, sizeMin, sizeMax float64) (RepeaterPlan, error) {
	if err := line.validate(); err != nil {
		return RepeaterPlan{}, err
	}
	if err := rep.validate(); err != nil {
		return RepeaterPlan{}, err
	}
	if maxK < 1 {
		return RepeaterPlan{}, fmt.Errorf("opt: maxK must be ≥ 1, got %d", maxK)
	}
	if !(sizeMin > 0) || !(sizeMax > sizeMin) {
		return RepeaterPlan{}, fmt.Errorf("opt: need 0 < sizeMin < sizeMax, got [%g, %g]", sizeMin, sizeMax)
	}
	best := RepeaterPlan{TotalDelay: math.Inf(1)}
	for k := 1; k <= maxK; k++ {
		stage, err := stageObjective(line, rep, k, sizeMin)
		if err != nil {
			return RepeaterPlan{}, err
		}
		size, sd := goldenSection(stage, sizeMin, sizeMax, 1e-6)
		total := float64(k) * sd
		if total < best.TotalDelay {
			best = RepeaterPlan{K: k, Size: size, StageDelay: sd, TotalDelay: total}
		}
	}
	return best, nil
}

// WireModel maps a segment width to its electrical values:
// R = RUnit/w, C = CAreaUnit·w + CFringe, L = LUnit (on-chip inductance is
// only weakly width-dependent; a constant is the standard first-order
// model).
type WireModel struct {
	RUnit     float64 // ohm·(width unit) per segment
	CAreaUnit float64 // farad/(width unit) per segment
	CFringe   float64 // farad per segment
	LUnit     float64 // henry per segment
}

// Values returns the RLC values of one segment at width w.
func (m WireModel) Values(w float64) rlctree.SectionValues {
	return rlctree.SectionValues{
		R: m.RUnit / w,
		L: m.LUnit,
		C: m.CAreaUnit*w + m.CFringe,
	}
}

// SizingProblem describes continuous wire sizing of a point-to-point line:
// choose each of Segments widths within [WMin, WMax] to minimize the
// equivalent-Elmore delay at the load.
type SizingProblem struct {
	Segments   int
	Model      WireModel
	WMin, WMax float64
	RDriver    float64 // source resistance
	CLoad      float64 // receiver input capacitance
}

func (p SizingProblem) validate() error {
	if p.Segments < 1 {
		return fmt.Errorf("opt: sizing needs ≥ 1 segment, got %d", p.Segments)
	}
	if !(p.WMin > 0) || !(p.WMax >= p.WMin) {
		return fmt.Errorf("opt: need 0 < WMin ≤ WMax, got [%g, %g]", p.WMin, p.WMax)
	}
	if !(p.RDriver >= 0) || !(p.CLoad >= 0) {
		return fmt.Errorf("opt: invalid driver/load: R=%g C=%g", p.RDriver, p.CLoad)
	}
	if !(p.Model.RUnit > 0) || !(p.Model.CAreaUnit > 0) || p.Model.CFringe < 0 || p.Model.LUnit < 0 {
		return fmt.Errorf("opt: invalid wire model %+v", p.Model)
	}
	return nil
}

// SizingResult reports the optimized widths and the resulting delay.
type SizingResult struct {
	Widths []float64
	Delay  float64 // equivalent-Elmore 50% delay at the load [s]
	// Sweeps is the number of full coordinate-descent sweeps executed,
	// counting the final sweep that established convergence. It is ≥ 1
	// whenever the optimizer ran and ≤ the maxSweeps bound.
	Sweeps int
	// Converged is true when the run stopped because a full sweep improved
	// the delay by less than relTol, false when it hit the maxSweeps bound.
	Converged bool
}

// Delay evaluates the sizing objective for an explicit width vector,
// building the tree from scratch — the one-shot form. Optimizer loops use
// an incremental session instead (see OptimizeWidths) and agree with this
// bit for bit.
func (p SizingProblem) Delay(widths []float64) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return delayRebuild(p, widths)
}

// OptimizeWidths minimizes the sizing objective by cyclic coordinate
// descent with a golden-section line search per segment — robust for this
// smooth, quasi-convex objective — starting from uniform mid-range widths.
// It stops when a full sweep improves the delay by less than relTol
// (default 1e-9 when zero) or after maxSweeps (default 50 when zero).
//
// The inner loop runs on an incremental analysis session: each candidate
// width edits one segment's R and C in place and re-derives the load's
// summations in O(depth), instead of rebuilding the tree and re-running
// the O(n) sweeps. Results are bit-identical to the rebuild-per-candidate
// evaluation (see optimizeWidthsRebuild) at a fraction of the cost.
func OptimizeWidths(p SizingProblem, relTol float64, maxSweeps int) (SizingResult, error) {
	relTol, maxSweeps = sizingDefaults(relTol, maxSweeps)
	if err := p.validate(); err != nil {
		return SizingResult{}, err
	}
	widths := initialWidths(p)
	ev, err := newSizingEval(p, widths)
	if err != nil {
		return SizingResult{}, err
	}
	return optimizeWidths(p, relTol, maxSweeps, ev, widths)
}
