package opt

import (
	"testing"
	"time"
)

// sizing64 is the benchmark sizing problem from the ISSUE acceptance
// criteria: a 64-segment line, the scale at which the incremental inner
// loop must beat the rebuild-per-candidate loop by an order of magnitude.
func sizing64() SizingProblem {
	p := testSizing
	p.Segments = 64
	return p
}

// benchSweeps bounds both twins to the same deterministic amount of
// coordinate-descent work so their ns/op are directly comparable (the
// descent paths are bit-identical, so both run exactly this many sweeps).
const benchSweeps = 3

// BenchmarkOptimizeWidthsIncremental solves the 64-segment sizing problem
// on the incremental session: each candidate is two element edits plus an
// O(depth) path re-derivation.
func BenchmarkOptimizeWidthsIncremental(b *testing.B) {
	p := sizing64()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeWidths(p, 0, benchSweeps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeWidthsRebuild solves the identical problem with the
// pre-incremental cost model: every candidate rebuilds the tree and runs
// the full O(n) summation passes. The Incremental/Rebuild ratio is the
// headline speedup of the incremental engine.
func BenchmarkOptimizeWidthsRebuild(b *testing.B) {
	p := sizing64()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := optimizeWidthsRebuild(p, 0, benchSweeps); err != nil {
			b.Fatal(err)
		}
	}
}

// TestIncrementalOptimizerSpeedup is the CI perf gate: on the 64-segment
// sizing problem the incremental optimizer must beat the
// rebuild-per-candidate twin by at least 5× (the ISSUE floor; ≥10× is
// typical on idle hardware — the gate leaves headroom for noisy CI
// runners). Both twins do bit-identical descent work, so the ratio
// isolates the evaluation mechanism.
func TestIncrementalOptimizerSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	p := sizing64()
	const sweeps = 2
	run := func(f func() (SizingResult, error)) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			t0 := time.Now()
			if _, err := f(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	incr := run(func() (SizingResult, error) { return OptimizeWidths(p, 0, sweeps) })
	rebuild := run(func() (SizingResult, error) { return optimizeWidthsRebuild(p, 0, sweeps) })
	speedup := float64(rebuild) / float64(incr)
	t.Logf("incremental %v, rebuild %v, speedup %.1f×", incr, rebuild, speedup)
	if speedup < 5 {
		t.Fatalf("incremental optimizer only %.1f× faster than rebuild (need ≥ 5×): %v vs %v",
			speedup, incr, rebuild)
	}
}
