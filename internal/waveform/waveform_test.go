package waveform

import (
	"math"
	"testing"
)

func expWave(tau, tEnd float64, n int) *Waveform {
	return MustSample(func(t float64) float64 { return 1 - math.Exp(-t/tau) }, 0, tEnd, n)
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]float64{0, 1}, []float64{0}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := New([]float64{0}, []float64{0}); err == nil {
		t.Fatal("expected too-few-samples error")
	}
	if _, err := New([]float64{0, 0}, []float64{0, 1}); err == nil {
		t.Fatal("expected non-increasing-times error")
	}
	w, err := New([]float64{0, 1, 2}, []float64{0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 || w.Start() != 0 || w.End() != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestSampleValidation(t *testing.T) {
	zero := func(float64) float64 { return 0 }
	for _, c := range []struct {
		t0, t1 float64
		n      int
	}{
		{0, 1, 0},
		{1, 1, 10},
		{2, 1, 10},
		{math.NaN(), 1, 10},
		{0, math.Inf(1), 10},
	} {
		if _, err := Sample(zero, c.t0, c.t1, c.n); err == nil {
			t.Errorf("Sample(f, %g, %g, %d): expected error", c.t0, c.t1, c.n)
		}
	}
	// MustSample panics on the same inputs (test/example convenience).
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustSample: expected panic")
			}
		}()
		MustSample(zero, 1, 1, 10)
	}()
}

func TestAtInterpolation(t *testing.T) {
	w, _ := New([]float64{0, 1, 3}, []float64{0, 2, 8})
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 1}, {1, 2}, {2, 5}, {3, 8}, {4, 8},
	}
	for _, c := range cases {
		if got := w.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestDelayAndRiseOnExponential(t *testing.T) {
	tau := 2e-9
	w := expWave(tau, 20e-9, 4000)
	d, err := w.Delay50(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Ln2 * tau; math.Abs(d-want) > 1e-3*want {
		t.Fatalf("Delay50 = %g, want %g", d, want)
	}
	r, err := w.RiseTime(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Log(9) * tau; math.Abs(r-want) > 1e-3*want {
		t.Fatalf("RiseTime = %g, want %g", r, want)
	}
}

func TestFirstCrossingNoCross(t *testing.T) {
	w, _ := New([]float64{0, 1, 2}, []float64{0, 0.2, 0.4})
	if _, err := w.FirstCrossing(0.9); err == nil {
		t.Fatal("expected ErrNoCrossing")
	}
	var e ErrNoCrossing
	_, err := w.FirstCrossing(0.9)
	if !errorsAs(err, &e) || e.Level != 0.9 {
		t.Fatalf("error %v does not carry the level", err)
	}
}

func errorsAs(err error, target *ErrNoCrossing) bool {
	if e, ok := err.(ErrNoCrossing); ok {
		*target = e
		return true
	}
	return false
}

// TestFirstCrossingAlreadyAbove: a record that starts at or above the level
// has not crossed it. The old code returned Time[0] here — a fabricated
// crossing that corrupted 50%-delay measurements on waveforms with nonzero
// initial values — so this test fails against the pre-fix behavior.
func TestFirstCrossingAlreadyAbove(t *testing.T) {
	w, _ := New([]float64{1, 2}, []float64{0.8, 0.9})
	if got, err := w.FirstCrossing(0.5); err == nil {
		t.Fatalf("FirstCrossing(0.5) = %g on a record starting above the level; want ErrNoCrossing", got)
	}
	var e ErrNoCrossing
	if _, err := w.FirstCrossing(0.5); !errorsAs(err, &e) || e.Level != 0.5 {
		t.Fatalf("error %v is not ErrNoCrossing carrying the level", err)
	}
}

// TestFirstCrossingDipAndRecross: starting above the level is fine as long
// as the signal later dips below and genuinely re-crosses; the reported
// time is that of the re-crossing, not the start.
func TestFirstCrossingDipAndRecross(t *testing.T) {
	w, _ := New(
		[]float64{0, 1, 2, 3, 4},
		[]float64{0.9, 0.2, 0.2, 0.8, 1.0},
	)
	got, err := w.FirstCrossing(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Linear interpolation between (2, 0.2) and (3, 0.8): 0.5 at t = 2.5.
	if math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("crossing = %g, want 2.5 (the genuine re-crossing)", got)
	}
}

// TestFirstCrossingExactStartSample: a first sample exactly at the level is
// not a crossing either — there was no below→above transition.
func TestFirstCrossingExactStartSample(t *testing.T) {
	w, _ := New([]float64{0, 1, 2}, []float64{0.5, 0.7, 0.9})
	if got, err := w.FirstCrossing(0.5); err == nil {
		t.Fatalf("FirstCrossing(0.5) = %g on a record starting exactly at the level; want ErrNoCrossing", got)
	}
}

// TestDelay50InitialValueAboveThreshold is the bug scenario from the field:
// an exponential-style response whose initial value already exceeds the 50%
// threshold. The old code reported delay 0 — a crossing that never
// happened; the fix reports ErrNoCrossing.
func TestDelay50InitialValueAboveThreshold(t *testing.T) {
	// Rises monotonically from 0.6 toward 1; the 0.5 level is never crossed.
	w := MustSample(func(t float64) float64 { return 1 - 0.4*math.Exp(-t) }, 0, 10, 1000)
	if d, err := w.Delay50(1); err == nil {
		t.Fatalf("Delay50 = %g for a waveform starting above 50%%; want ErrNoCrossing", d)
	}
	// The 90% level is genuinely crossed, so RiseTime's 90% leg still works
	// when measured from a level below the starting value... but the 10%
	// point does not exist, so RiseTime must fail loudly rather than
	// reporting a rise from t=0.
	if r, err := w.RiseTime(1); err == nil {
		t.Fatalf("RiseTime = %g for a waveform starting above 10%%; want error", r)
	}
}

func TestExtremaOnDampedSine(t *testing.T) {
	// e^{-t}·sin has alternating extrema; check count and ordering.
	f := func(t float64) float64 { return 1 - math.Exp(-0.3*t)*math.Cos(t) }
	w := MustSample(f, 0, 20, 20000)
	ex := w.Extrema()
	if len(ex) < 4 {
		t.Fatalf("expected ≥ 4 extrema, got %d", len(ex))
	}
	// Alternating max/min starting with a maximum: the extrema of
	// 1 − e^{−at}·cos(t) satisfy tan(t) = −a, so the first maximum is at
	// t₁ = π − atan(a) with a = 0.3.
	if !ex[0].Maximum {
		t.Fatal("first extremum should be a maximum")
	}
	t1 := math.Pi - math.Atan(0.3)
	if math.Abs(ex[0].T-t1) > 0.01 {
		t.Fatalf("first extremum at %g, want ≈ %g", ex[0].T, t1)
	}
	for i := 1; i < len(ex); i++ {
		if ex[i].Maximum == ex[i-1].Maximum {
			t.Fatal("extrema must alternate")
		}
		if ex[i].T <= ex[i-1].T {
			t.Fatal("extrema times must increase")
		}
	}
}

func TestExtremaFlatRuns(t *testing.T) {
	w, _ := New([]float64{0, 1, 2, 3, 4}, []float64{0, 1, 1, 0, 0.5})
	ex := w.Extrema()
	if len(ex) != 2 || !ex[0].Maximum || ex[0].V != 1 || ex[1].Maximum || ex[1].V != 0 {
		t.Fatalf("flat-run extrema wrong: %+v", ex)
	}
}

func TestOvershoot(t *testing.T) {
	f := func(t float64) float64 { return 1 - math.Exp(-0.3*t)*math.Cos(t) }
	w := MustSample(f, 0, 30, 30000)
	frac, at := w.Overshoot(1)
	// First maximum at t₁ = π − atan(0.3) with |cos t₁| = 1/√(1+0.09),
	// so the overshoot fraction is e^{−0.3·t₁}/√1.09.
	t1 := math.Pi - math.Atan(0.3)
	want := math.Exp(-0.3*t1) / math.Sqrt(1.09)
	if math.Abs(frac-want) > 1e-3 {
		t.Fatalf("overshoot = %g, want %g", frac, want)
	}
	if math.Abs(at-t1) > 0.01 {
		t.Fatalf("overshoot at %g, want ≈ %g", at, t1)
	}
	// Monotone signal: zero overshoot.
	mono := expWave(1e-9, 10e-9, 100)
	if frac, _ := mono.Overshoot(1); frac != 0 {
		t.Fatalf("monotone overshoot = %g, want 0", frac)
	}
}

func TestSettlingTime(t *testing.T) {
	// First-order: settles within 10% at t = ln(10)·τ.
	tau := 1.0
	w := MustSample(func(t float64) float64 { return 1 - math.Exp(-t/tau) }, 0, 12, 24000)
	ts, err := w.SettlingTime(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Log(10); math.Abs(ts-want) > 1e-3 {
		t.Fatalf("settling = %g, want %g", ts, want)
	}
	// Record too short to witness settling.
	short := MustSample(func(t float64) float64 { return 1 - math.Exp(-t/tau) }, 0, 1, 100)
	if _, err := short.SettlingTime(1, 0.1); err == nil {
		t.Fatal("expected not-settled error")
	}
}

func TestSettlingTimeAlreadySettled(t *testing.T) {
	w, _ := New([]float64{0, 1, 2}, []float64{1, 1, 1})
	ts, err := w.SettlingTime(1, 0.1)
	if err != nil || ts != 0 {
		t.Fatalf("settling = %g err=%v, want 0", ts, err)
	}
}

func TestMaxAbsDiffAndRMS(t *testing.T) {
	a := MustSample(func(t float64) float64 { return t }, 0, 1, 100)
	b := MustSample(func(t float64) float64 { return t + 0.25 }, 0, 1, 77)
	if d := MaxAbsDiff(a, b); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %g, want 0.25", d)
	}
	if d := RMSDiff(a, b, 500); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("RMSDiff = %g, want 0.25", d)
	}
	if d := MaxAbsDiff(a, a); d != 0 {
		t.Fatalf("self diff = %g, want 0", d)
	}
}
