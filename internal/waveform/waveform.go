// Package waveform represents sampled time-domain signals and extracts the
// timing quantities the paper characterizes: threshold crossings, 50%
// propagation delay, 10–90% rise time, overshoots/undershoots, and settling
// time. It is used to measure simulator output so it can be compared
// against the closed-form expressions of internal/core.
//
// Crossing contract: FirstCrossing (and everything built on it — CrossTime,
// Delay50, RiseTime) reports only genuine below→at-or-above transitions of
// the requested level. A record whose first sample already sits at or above
// the level has not crossed it; such a record yields ErrNoCrossing unless
// the signal later dips below the level and rises back through it. Callers
// measuring delays on waveforms with nonzero initial values (e.g.
// exponential inputs with V0 above the threshold) must treat ErrNoCrossing
// as "no measurable delay", not as time zero.
package waveform

import (
	"fmt"
	"math"
	"sort"
)

// Waveform is a signal sampled at strictly increasing times. Values between
// samples are linearly interpolated.
type Waveform struct {
	Time  []float64
	Value []float64
}

// New validates and wraps parallel time/value slices (not copied).
func New(time, value []float64) (*Waveform, error) {
	if len(time) != len(value) {
		return nil, fmt.Errorf("waveform: length mismatch: %d times vs %d values", len(time), len(value))
	}
	if len(time) < 2 {
		return nil, fmt.Errorf("waveform: need at least 2 samples, got %d", len(time))
	}
	for i := 1; i < len(time); i++ {
		if time[i] <= time[i-1] {
			return nil, fmt.Errorf("waveform: times not strictly increasing at sample %d (%g then %g)", i, time[i-1], time[i])
		}
	}
	return &Waveform{Time: time, Value: value}, nil
}

// Sample evaluates f at n+1 uniform points over [t0, t1] (inclusive).
// It requires n ≥ 1 and a non-empty, finite interval t0 < t1 and reports
// a descriptive error otherwise — sampling parameters often come from
// simulated or parsed quantities, so bad values must not crash a run.
func Sample(f func(float64) float64, t0, t1 float64, n int) (*Waveform, error) {
	if n < 1 {
		return nil, fmt.Errorf("waveform: Sample requires n >= 1, got %d", n)
	}
	if math.IsNaN(t0) || math.IsNaN(t1) || math.IsInf(t0, 0) || math.IsInf(t1, 0) || t1 <= t0 {
		return nil, fmt.Errorf("waveform: Sample requires finite t1 > t0, got [%g, %g]", t0, t1)
	}
	time := make([]float64, n+1)
	value := make([]float64, n+1)
	dt := (t1 - t0) / float64(n)
	for i := 0; i <= n; i++ {
		t := t0 + float64(i)*dt
		time[i] = t
		value[i] = f(t)
	}
	return &Waveform{Time: time, Value: value}, nil
}

// MustSample is Sample, panicking on invalid parameters. Intended for
// tests and examples with hard-coded sampling windows.
func MustSample(f func(float64) float64, t0, t1 float64, n int) *Waveform {
	w, err := Sample(f, t0, t1, n)
	if err != nil {
		panic(err)
	}
	return w
}

// Len returns the number of samples.
func (w *Waveform) Len() int { return len(w.Time) }

// Start and End return the first and last sample times.
func (w *Waveform) Start() float64 { return w.Time[0] }

// End returns the last sample time.
func (w *Waveform) End() float64 { return w.Time[len(w.Time)-1] }

// At linearly interpolates the waveform at time t, clamping outside the
// sampled range to the end values.
func (w *Waveform) At(t float64) float64 {
	if t <= w.Time[0] {
		return w.Value[0]
	}
	n := len(w.Time)
	if t >= w.Time[n-1] {
		return w.Value[n-1]
	}
	i := sort.SearchFloat64s(w.Time, t)
	if w.Time[i] == t {
		return w.Value[i]
	}
	t0, t1 := w.Time[i-1], w.Time[i]
	v0, v1 := w.Value[i-1], w.Value[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Final returns the last sampled value, used as the steady-state estimate.
func (w *Waveform) Final() float64 { return w.Value[len(w.Value)-1] }

// ErrNoCrossing reports that the waveform never crosses the requested level.
type ErrNoCrossing struct {
	Level float64
}

func (e ErrNoCrossing) Error() string {
	return fmt.Sprintf("waveform: signal never crosses level %g", e.Level)
}

// FirstCrossing returns the earliest time at which the waveform crosses
// level in the rising direction — a genuine below→at-or-above transition,
// linearly interpolated between samples. A record that starts at or above
// the level has not crossed it: unless a later sample dips below the level
// and rises back through it, FirstCrossing reports ErrNoCrossing rather
// than fabricating a crossing at the first sample. (Before this contract
// was tightened, a waveform with a nonzero initial value — e.g. an
// exponential-input deck whose V0 sits above the threshold — was assigned
// a spurious "crossing" at Time[0], corrupting 50%-delay measurements.)
func (w *Waveform) FirstCrossing(level float64) (float64, error) {
	return w.firstCrossingFrom(0, level)
}

// firstCrossingFrom scans sample pairs starting at index start for the
// first below→at-or-above transition of level. The start sample itself
// being at-or-above the level is not a crossing.
func (w *Waveform) firstCrossingFrom(start int, level float64) (float64, error) {
	if start < 0 {
		start = 0
	}
	for i := start + 1; i < len(w.Value); i++ {
		v0, v1 := w.Value[i-1], w.Value[i]
		if v0 < level && v1 >= level {
			t0, t1 := w.Time[i-1], w.Time[i]
			return t0 + (t1-t0)*(level-v0)/(v1-v0), nil
		}
	}
	return 0, ErrNoCrossing{Level: level}
}

// CrossTime returns the first time the waveform reaches frac·final in the
// rising direction, where final is the steady-state value. frac is a
// fraction in (0, 1], e.g. 0.5 for the 50% point.
func (w *Waveform) CrossTime(frac, final float64) (float64, error) {
	return w.FirstCrossing(frac * final)
}

// Delay50 returns the 50% propagation delay relative to t=0 for a signal
// with steady-state value final.
func (w *Waveform) Delay50(final float64) (float64, error) {
	return w.CrossTime(0.5, final)
}

// RiseTime returns the 10%→90% rise time (first crossings of each level)
// for a signal with steady-state value final, the definition used in the
// paper (Sec. IV).
func (w *Waveform) RiseTime(final float64) (float64, error) {
	t10, err := w.CrossTime(0.1, final)
	if err != nil {
		return 0, fmt.Errorf("10%% point: %w", err)
	}
	// Search for the 90% crossing only after the 10% point.
	i := sort.SearchFloat64s(w.Time, t10)
	if i > 0 {
		i--
	}
	t90, err := w.firstCrossingFrom(i, 0.9*final)
	if err != nil {
		return 0, fmt.Errorf("90%% point: %w", err)
	}
	return t90 - t10, nil
}

// Extremum is a local peak or valley of the waveform.
type Extremum struct {
	T, V    float64
	Maximum bool // true for a local maximum
}

// Extrema returns the interior local extrema of the waveform in time order.
// Flat runs report their first sample. Endpoints are not extrema.
func (w *Waveform) Extrema() []Extremum {
	var out []Extremum
	n := len(w.Value)
	for i := 1; i < n-1; i++ {
		v := w.Value[i]
		// Find the next strictly different sample to handle flat runs.
		j := i + 1
		for j < n && w.Value[j] == v {
			j++
		}
		if j == n {
			break
		}
		prev := w.Value[i-1]
		next := w.Value[j]
		switch {
		case v > prev && v > next:
			out = append(out, Extremum{T: w.Time[i], V: v, Maximum: true})
		case v < prev && v < next:
			out = append(out, Extremum{T: w.Time[i], V: v, Maximum: false})
		}
		i = j - 1
	}
	return out
}

// Overshoot returns the maximum relative overshoot above the steady-state
// value final, as a fraction of final (0 when monotone), and the time at
// which it occurs. For a non-monotone (underdamped) response this is the
// first and largest overshoot of paper eq. (39) with n=1.
func (w *Waveform) Overshoot(final float64) (frac, at float64) {
	sign := 1.0
	if final < 0 {
		sign = -1
	}
	for i, v := range w.Value {
		if excess := sign * (v - final); excess > frac*math.Abs(final) {
			frac = excess / math.Abs(final)
			at = w.Time[i]
		}
	}
	return frac, at
}

// SettlingTime returns the time after which the waveform stays within
// ±x·|final| of final for the remainder of the record (paper eq. (42) uses
// x = 0.1). It reports an error when the final sample itself is outside the
// band, meaning the record is too short to witness settling.
func (w *Waveform) SettlingTime(final, x float64) (float64, error) {
	band := x * math.Abs(final)
	last := len(w.Value) - 1
	if math.Abs(w.Value[last]-final) > band {
		return 0, fmt.Errorf("waveform: not settled within ±%g%% by end of record", 100*x)
	}
	// Walk backwards to the last sample outside the band.
	for i := last; i >= 0; i-- {
		if math.Abs(w.Value[i]-final) > band {
			// The settling instant is between sample i and i+1: interpolate
			// against whichever band edge was violated.
			v0, v1 := w.Value[i], w.Value[i+1]
			edge := final + band
			if v0 < final {
				edge = final - band
			}
			t0, t1 := w.Time[i], w.Time[i+1]
			if v1 == v0 {
				return t1, nil
			}
			return t0 + (t1-t0)*(edge-v0)/(v1-v0), nil
		}
	}
	return w.Time[0], nil
}

// MaxAbsDiff returns the maximum absolute difference between two waveforms
// over the overlap of their time ranges, comparing at the union of both
// sample grids.
func MaxAbsDiff(a, b *Waveform) float64 {
	lo := math.Max(a.Start(), b.Start())
	hi := math.Min(a.End(), b.End())
	var max float64
	check := func(t float64) {
		if t < lo || t > hi {
			return
		}
		if d := math.Abs(a.At(t) - b.At(t)); d > max {
			max = d
		}
	}
	for _, t := range a.Time {
		check(t)
	}
	for _, t := range b.Time {
		check(t)
	}
	return max
}

// RMSDiff returns the root-mean-square difference between two waveforms
// sampled at n uniform points over the overlap of their time ranges.
func RMSDiff(a, b *Waveform, n int) float64 {
	lo := math.Max(a.Start(), b.Start())
	hi := math.Min(a.End(), b.End())
	if hi <= lo || n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		t := lo + (hi-lo)*float64(i)/float64(n-1)
		d := a.At(t) - b.At(t)
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}
