// Package lina provides the small dense linear-algebra kernel shared by the
// MNA circuit formulation and the least-squares fitting code: a row-major
// dense matrix, LU factorization with partial pivoting, and solves.
//
// The circuits analyzed in this library (RLC interconnect trees) have at
// most a few thousand unknowns, so a dense kernel is both simple and fast
// enough; the tree-specific O(n) algorithms in internal/rlctree are used
// where asymptotic complexity matters.
package lina

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("lina: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Add accumulates v into the element at row r, column c.
func (m *Matrix) Add(r, c int, v float64) { m.Data[r*m.Cols+c] += v }

// Zero resets every element to zero, preserving the allocation.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = m·x. The receiver must be Rows×Cols with len(x)==Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("lina: MulVec dimension mismatch: %d vs %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var s float64
		for c, v := range row {
			s += v * x[c]
		}
		y[r] = s
	}
	return y
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			t.Set(c, r, m.At(r, c))
		}
	}
	return t
}

// Mul returns m·b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("lina: Mul dimension mismatch: %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	p := NewMatrix(m.Rows, b.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			for c := 0; c < b.Cols; c++ {
				p.Add(r, c, a*b.At(k, c))
			}
		}
	}
	return p
}

// ErrSingular reports that LU factorization hit a (numerically) zero pivot.
var ErrSingular = errors.New("lina: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting of a square matrix,
// P·A = L·U, suitable for repeated solves against many right-hand sides.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above diagonal)
	piv  []int     // row permutation
	sign int       // permutation parity (for Det)
}

// Factor computes the LU factorization of the square matrix a.
// The input matrix is not modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("lina: Factor requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at or below the diagonal.
		p := k
		max := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for c := 0; c < n; c++ {
				lu[p*n+c], lu[k*n+c] = lu[k*n+c], lu[p*n+c]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for c := k + 1; c < n; c++ {
				lu[i*n+c] -= m * lu[k*n+c]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b using the factorization, returning x.
// b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic(fmt.Sprintf("lina: Solve dimension mismatch: %d vs %d", len(b), f.n))
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-lower-triangular L.
	for i := 1; i < n; i++ {
		var s float64
		for c := 0; c < i; c++ {
			s += f.lu[i*n+c] * x[c]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for c := i + 1; c < n; c++ {
			s += f.lu[i*n+c] * x[c]
		}
		x[i] = (x[i] - s) / f.lu[i*n+i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense solves A·x = b for a single right-hand side, factoring A once.
func SolveDense(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// SolveLeastSquares solves the overdetermined system A·x ≈ b (Rows ≥ Cols)
// in the least-squares sense via the normal equations AᵀA·x = Aᵀb.
// The basis matrices produced by the fitting code are tiny and
// well-conditioned, so the normal-equation approach is adequate.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("lina: least squares dimension mismatch: %d rows vs %d observations", a.Rows, len(b))
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("lina: underdetermined system: %d rows < %d cols", a.Rows, a.Cols)
	}
	at := a.Transpose()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	return SolveDense(ata, atb)
}
