package lina

import (
	"math/cmplx"
	"testing"
)

func TestCMatrixAccessors(t *testing.T) {
	m := NewCMatrix(2, 2)
	m.Set(0, 1, complex(1, 2))
	m.Add(0, 1, complex(0, 1))
	if m.At(0, 1) != complex(1, 3) {
		t.Fatalf("At = %v", m.At(0, 1))
	}
}

func TestNewCMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCMatrix(0, 1)
}

func TestSolveComplexKnown(t *testing.T) {
	// (1+j)x + 2y = 3+j; x − jy = 1  →  verify by residual.
	a := NewCMatrix(2, 2)
	a.Set(0, 0, complex(1, 1))
	a.Set(0, 1, 2)
	a.Set(1, 0, 1)
	a.Set(1, 1, complex(0, -1))
	b := []complex128{complex(3, 1), 1}
	x, err := SolveComplex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r0 := complex(1, 1)*x[0] + 2*x[1] - b[0]
	r1 := x[0] - complex(0, 1)*x[1] - b[1]
	if cmplx.Abs(r0) > 1e-12 || cmplx.Abs(r1) > 1e-12 {
		t.Fatalf("residuals %v %v", r0, r1)
	}
}

func TestSolveComplexPivoting(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	x, err := SolveComplex(a, []complex128{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 5 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveComplexErrors(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveComplex(a, []complex128{1, 1}); err == nil {
		t.Fatal("singular must fail")
	}
	if _, err := SolveComplex(NewCMatrix(2, 3), []complex128{1, 1}); err == nil {
		t.Fatal("non-square must fail")
	}
	if _, err := SolveComplex(NewCMatrix(2, 2), []complex128{1}); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}
