package lina

import (
	"fmt"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix, used by the AC (phasor)
// analysis and the AWE residue solves.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zeroed rows×cols complex matrix.
func NewCMatrix(rows, cols int) *CMatrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("lina: invalid dimensions %dx%d", rows, cols))
	}
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns the element at row r, column c.
func (m *CMatrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *CMatrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Add accumulates v into the element at row r, column c.
func (m *CMatrix) Add(r, c int, v complex128) { m.Data[r*m.Cols+c] += v }

// SolveComplex solves the square complex system a·x = b by Gaussian
// elimination with partial pivoting. a and b are not modified.
func SolveComplex(a *CMatrix, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("lina: SolveComplex requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("lina: SolveComplex dimension mismatch: %d vs %d", len(b), n)
	}
	m := make([]complex128, len(a.Data))
	copy(m, a.Data)
	x := make([]complex128, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		p := k
		max := cmplx.Abs(m[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(m[i*n+k]); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for c := k; c < n; c++ {
				m[p*n+c], m[k*n+c] = m[k*n+c], m[p*n+c]
			}
			x[p], x[k] = x[k], x[p]
		}
		pivot := m[k*n+k]
		for i := k + 1; i < n; i++ {
			f := m[i*n+k] / pivot
			if f == 0 {
				continue
			}
			for c := k; c < n; c++ {
				m[i*n+c] -= f * m[k*n+c]
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		var s complex128
		for c := i + 1; c < n; c++ {
			s += m[i*n+c] * x[c]
		}
		x[i] = (x[i] - s) / m[i*n+i]
	}
	return x, nil
}
