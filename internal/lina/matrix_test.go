package lina

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 2.5)
	m.Add(0, 1, 0.5)
	if got := m.At(0, 1); got != 3 {
		t.Fatalf("At(0,1) = %g, want 3", got)
	}
	if got := m.At(1, 2); got != 0 {
		t.Fatalf("At(1,2) = %g, want 0", got)
	}
	c := m.Clone()
	c.Set(0, 1, 99)
	if m.At(0, 1) != 3 {
		t.Fatal("Clone aliases the original data")
	}
	m.Zero()
	if m.At(0, 1) != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x3 matrix")
		}
	}()
	NewMatrix(0, 3)
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [1 2 3; 4 5 6] · [1 1 1]ᵀ = [6 15]ᵀ
	for c := 0; c < 3; c++ {
		m.Set(0, c, float64(c+1))
		m.Set(1, c, float64(c+4))
	}
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", y)
	}
}

func TestTransposeMul(t *testing.T) {
	a := NewMatrix(2, 3)
	vals := []float64{1, 2, 3, 4, 5, 6}
	copy(a.Data, vals)
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %+v", at)
	}
	p := a.Mul(at) // 2x2: [[14 32][32 77]]
	want := [][]float64{{14, 32}, {32, 77}}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if p.At(r, c) != want[r][c] {
				t.Fatalf("Mul[%d][%d] = %g, want %g", r, c, p.At(r, c), want[r][c])
			}
		}
	}
}

func TestFactorSolveKnown(t *testing.T) {
	// x + 2y = 5; 3x + 4y = 11 → x=1, y=2
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	x, err := SolveDense(a, []float64{5, 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("solution = %v, want [1 2]", x)
	}
}

func TestFactorNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{0, 1, 1, 0})
	x, err := SolveDense(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Fatalf("solution = %v, want [7 3]", x)
	}
}

func TestFactorSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := Factor(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestFactorRejectsNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestDet(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{2, 0, 0, 0, 3, 0, 0, 0, 4})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-24) > 1e-12 {
		t.Fatalf("Det = %g, want 24", f.Det())
	}
	// Permutation flips the sign; the det must still come out right.
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{0, 1, 1, 0})
	fb, err := Factor(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fb.Det()+1) > 1e-12 {
		t.Fatalf("Det = %g, want -1", fb.Det())
	}
}

func TestSolveReusableFactorization(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{4, 1, 1, 3})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]float64{{1, 0}, {0, 1}, {5, 5}} {
		x := f.Solve(b)
		y := a.MulVec(x)
		for i := range b {
			if math.Abs(y[i]-b[i]) > 1e-12 {
				t.Fatalf("residual too large for b=%v: got %v", b, y)
			}
		}
	}
}

// TestSolveRandomProperty: random diagonally dominant systems solve with a
// small residual.
func TestSolveRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for r := 0; r < n; r++ {
			var rowSum float64
			for c := 0; c < n; c++ {
				v := rng.NormFloat64()
				a.Set(r, c, v)
				rowSum += math.Abs(v)
			}
			a.Add(r, r, rowSum+1) // dominance ⇒ nonsingular
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Fit y = 2 + 3x exactly through an overdetermined consistent system.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	c, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-2) > 1e-10 || math.Abs(c[1]-3) > 1e-10 {
		t.Fatalf("coefficients = %v, want [2 3]", c)
	}
}

func TestSolveLeastSquaresResidualOrthogonality(t *testing.T) {
	// For a noisy fit, the residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(7))
	n := 40
	a := NewMatrix(n, 3)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) / 10
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		a.Set(i, 2, x*x)
		b[i] = 1 - 2*x + 0.5*x*x + 0.01*rng.NormFloat64()
	}
	c, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	fitv := a.MulVec(c)
	res := make([]float64, n)
	for i := range res {
		res[i] = b[i] - fitv[i]
	}
	proj := a.Transpose().MulVec(res)
	for j, v := range proj {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("Aᵀ·residual[%d] = %g, want ≈ 0", j, v)
		}
	}
}

func TestSolveLeastSquaresErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLeastSquares(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for underdetermined system")
	}
	b := NewMatrix(3, 2)
	if _, err := SolveLeastSquares(b, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched observations")
	}
}
