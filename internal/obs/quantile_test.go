package obs

import (
	"math"
	"testing"
	"time"
)

// TestPercentileMatchesLoadHarness pins the nearest-rank semantics that
// cmd/eedload shipped with before the helper was hoisted here: the table
// rows are the old pct() outputs verbatim, so load-report percentiles
// are unchanged by the dedupe.
func TestPercentileMatchesLoadHarness(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		p      int
		want   time.Duration
	}{
		{"empty", nil, 50, 0},
		{"single_p50", ms(7), 50, 7 * time.Millisecond},
		{"single_p99", ms(7), 99, 7 * time.Millisecond},
		{"ten_p50", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 50, 5 * time.Millisecond},
		{"ten_p90", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 90, 9 * time.Millisecond},
		{"ten_p99", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 99, 10 * time.Millisecond},
		{"hundred_p50", seqDur(100), 50, 50 * time.Millisecond},
		{"hundred_p99", seqDur(100), 99, 99 * time.Millisecond},
		{"p0_clamps_low", ms(3, 9), 0, 3 * time.Millisecond},
		{"p100_clamps_high", ms(3, 9), 100, 9 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := Percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: Percentile(p=%d) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
	// Works over plain numeric types too (the chaos report uses float64 ms).
	if got := Percentile([]float64{1.5, 2.5, 3.5}, 50); got != 2.5 {
		t.Errorf("float64 p50 = %v, want 2.5", got)
	}
}

func seqDur(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i+1) * time.Millisecond
	}
	return out
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram("q", "", []int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	// rank(0.5) = 2 → second bucket (10, 100], prev cum 1, width 90,
	// one sample → 10 + 90*(2-1)/1 = 100.
	if got := h.Quantile(0.5); got != 100 {
		t.Errorf("Quantile(0.5) = %v, want 100", got)
	}
	// rank(0.95) = 3.8 → +Inf bucket → clamp to highest finite bound.
	if got := h.Quantile(0.95); got != 1000 {
		t.Errorf("Quantile(0.95) = %v, want 1000", got)
	}
	// First-bucket interpolation from lower bound 0: rank(0.25) = 1 →
	// 0 + 10*(1-0)/1 = 10.
	if got := h.Quantile(0.25); got != 10 {
		t.Errorf("Quantile(0.25) = %v, want 10", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	empty := newHistogram("e", "", []int64{10})
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile = %v, want NaN", got)
	}
	h := newHistogram("h", "", []int64{10, 100})
	h.Observe(5)
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
	// Out-of-range q clamps rather than erroring.
	if got := h.Quantile(2); got != 10 {
		t.Errorf("Quantile(2) = %v, want 10", got)
	}
	// All samples in +Inf with no finite bound crossing below: estimate
	// clamps to the largest finite bound.
	inf := newHistogram("i", "", []int64{10})
	inf.Observe(999)
	if got := inf.Quantile(0.5); got != 10 {
		t.Errorf("+Inf-only Quantile = %v, want 10 (largest finite bound)", got)
	}
}
