package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one of everything, with fixed
// values, so the exposition formats can be compared byte-for-byte.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter(Label("eed_test_errors_total", "class", "parse"), "Errors by class.").Add(3)
	r.Counter(Label("eed_test_errors_total", "class", "numeric"), "Errors by class.").Add(1)
	r.Counter("eed_test_hits_total", "Cache hits.").Add(7)
	r.Gauge("eed_test_entries", "Live cache entries.").Set(42)
	h := r.Histogram("eed_test_latency_ns", "Stage latency.", []int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	return r
}

const goldenPrometheus = `# HELP eed_test_entries Live cache entries.
# TYPE eed_test_entries gauge
eed_test_entries 42
# HELP eed_test_errors_total Errors by class.
# TYPE eed_test_errors_total counter
eed_test_errors_total{class="numeric"} 1
eed_test_errors_total{class="parse"} 3
# HELP eed_test_hits_total Cache hits.
# TYPE eed_test_hits_total counter
eed_test_hits_total 7
# HELP eed_test_latency_ns Stage latency.
# TYPE eed_test_latency_ns histogram
eed_test_latency_ns_bucket{le="10"} 1
eed_test_latency_ns_bucket{le="100"} 2
eed_test_latency_ns_bucket{le="1000"} 3
eed_test_latency_ns_bucket{le="+Inf"} 4
eed_test_latency_ns_sum 5555
eed_test_latency_ns_count 4
eed_test_latency_ns_p50 100
eed_test_latency_ns_p95 1000
eed_test_latency_ns_p99 1000
`

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != goldenPrometheus {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenPrometheus)
	}
}

// The HELP/TYPE header must appear once per family, not once per labeled
// series — checked structurally on top of the golden comparison so the
// intent survives golden-file churn.
func TestWritePrometheusFamilyGrouping(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE eed_test_errors_total counter"); n != 1 {
		t.Errorf("family header appears %d times, want 1:\n%s", n, out)
	}
}

const goldenJSON = `{
  "counters": {
    "eed_test_errors_total{class=\"numeric\"}": 1,
    "eed_test_errors_total{class=\"parse\"}": 3,
    "eed_test_hits_total": 7
  },
  "gauges": {
    "eed_test_entries": 42
  },
  "histograms": {
    "eed_test_latency_ns": {
      "buckets": [
        {
          "le": "10",
          "count": 1
        },
        {
          "le": "100",
          "count": 2
        },
        {
          "le": "1000",
          "count": 3
        },
        {
          "le": "+Inf",
          "count": 4
        }
      ],
      "sum": 5555,
      "count": 4,
      "p50": 100,
      "p95": 1000,
      "p99": 1000
    }
  }
}
`

func TestWriteJSONGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if got != goldenJSON {
		t.Errorf("JSON dump mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenJSON)
	}
	// And it must actually be valid JSON.
	var v map[string]any
	if err := json.Unmarshal([]byte(got), &v); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
}

func TestDumpPrometheusFiles(t *testing.T) {
	r := goldenRegistry()
	dir := t.TempDir()
	txt := dir + "/metrics.prom"
	if err := r.DumpPrometheus(txt); err != nil {
		t.Fatal(err)
	}
	jsonPath := dir + "/metrics.json"
	if err := r.DumpPrometheus(jsonPath); err != nil {
		t.Fatal(err)
	}
	tb, jb := mustRead(t, txt), mustRead(t, jsonPath)
	if tb != goldenPrometheus {
		t.Errorf(".prom dump differs from WritePrometheus")
	}
	if jb != goldenJSON {
		t.Errorf(".json dump differs from WriteJSON")
	}
}
