package obs

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"
)

// fakeClock makes span timing deterministic: every call to now() advances
// the clock by one millisecond.
func fakeClock(t *testing.T) {
	t.Helper()
	base := time.Unix(1000, 0)
	tick := 0
	now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Millisecond)
	}
	t.Cleanup(func() { now = time.Now })
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestStartSpanWithoutTrace(t *testing.T) {
	span, ctx := StartSpan(context.Background(), "stage")
	if span != nil {
		t.Fatal("no trace in context must yield a nil span")
	}
	if ctx != context.Background() {
		t.Fatal("context must be returned unchanged")
	}
	// All methods must be no-ops on the nil span.
	span.SetLabel("x")
	span.SetSections(1)
	span.SetWorkers(1)
	span.SetOutcome("ok")
	span.End()
	span.EndWith("error")
}

const goldenTrace = `{
  "name": "cli",
  "outcome": "ok",
  "start_ns": 0,
  "dur_ns": 7000000,
  "children": [
    {
      "name": "parse",
      "label": "tree.txt",
      "outcome": "ok",
      "sections": 7,
      "start_ns": 1000000,
      "dur_ns": 1000000
    },
    {
      "name": "sweep",
      "outcome": "degraded",
      "sections": 7,
      "workers": 4,
      "start_ns": 3000000,
      "dur_ns": 3000000,
      "children": [
        {
          "name": "sums",
          "outcome": "ok",
          "start_ns": 4000000,
          "dur_ns": 1000000
        }
      ]
    }
  ]
}
`

func TestTraceGoldenJSON(t *testing.T) {
	fakeClock(t)
	trace := NewTrace("cli") // t=1ms
	ctx := WithTrace(context.Background(), trace)

	parse, _ := StartSpan(ctx, "parse") // t=2ms
	parse.SetLabel("tree.txt")
	parse.SetSections(7)
	parse.End() // t=3ms → dur 1ms

	sweep, sctx := StartSpan(ctx, "sweep") // t=4ms
	sweep.SetSections(7)
	sweep.SetWorkers(4)
	sums, _ := StartSpan(sctx, "sums") // t=5ms
	sums.End()                         // t=6ms → dur 1ms
	sweep.EndWith("degraded")          // t=7ms → dur 3ms

	trace.Finish() // t=8ms → root dur 7ms

	var sb strings.Builder
	if err := trace.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != goldenTrace {
		t.Errorf("trace JSON mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenTrace)
	}
}

// Every span must report a non-zero duration, even when it starts and
// ends on the same clock reading.
func TestSpanDurationClamped(t *testing.T) {
	frozen := time.Unix(2000, 0)
	now = func() time.Time { return frozen }
	t.Cleanup(func() { now = time.Now })
	trace := NewTrace("root")
	ctx := WithTrace(context.Background(), trace)
	s, _ := StartSpan(ctx, "instant")
	s.End()
	trace.Finish()
	var sb strings.Builder
	if err := trace.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `"dur_ns": 0`) {
		t.Fatalf("zero-duration span in trace:\n%s", sb.String())
	}
}

func TestTraceDumpJSONFile(t *testing.T) {
	fakeClock(t)
	trace := NewTrace("cli")
	trace.Finish()
	path := t.TempDir() + "/trace.json"
	if err := trace.DumpJSON(path); err != nil {
		t.Fatal(err)
	}
	if out := mustRead(t, path); !strings.Contains(out, `"name": "cli"`) {
		t.Fatalf("dump missing root span:\n%s", out)
	}
}

func TestWithTraceNil(t *testing.T) {
	ctx := context.Background()
	if got := WithTrace(ctx, nil); got != ctx {
		t.Fatal("WithTrace(nil) must return the context unchanged")
	}
}
