package obs

import (
	"io"
	"log/slog"
	"os"
)

// NewLogger opens a structured JSON logger writing to path ("-" means
// stdout; anything else is created/appended). The returned closer is nil
// for stdout. Callers own closing; eedd closes it after the drain
// completes so the "drained" lifecycle event is flushed.
func NewLogger(path string) (*slog.Logger, io.Closer, error) {
	if path == "-" {
		return slog.New(slog.NewJSONHandler(os.Stdout, nil)), nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return slog.New(slog.NewJSONHandler(f, nil)), f, nil
}
