package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Lookup on the hot path is lock-free (a
// sync.Map load); creation takes a mutex once per metric name. Metric
// names follow the Prometheus convention (`eed_engine_cache_hits_total`)
// and may carry a single label rendered into the name with Label
// (`eed_guard_errors_total{class="parse"}`) — the exposition writer
// groups labeled series into one metric family.
type Registry struct {
	mu      sync.Mutex // serializes creation only
	metrics sync.Map   // full name -> *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry. Most code uses Default().
func NewRegistry() *Registry { return &Registry{} }

// Label renders a single key="value" label into a metric name, escaping
// the value's backslashes, quotes and newlines per the exposition format.
func Label(name, key, value string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return fmt.Sprintf(`%s{%s="%s"}`, name, key, r.Replace(value))
}

// familyOf strips the label part of a full metric name.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter is a monotonically increasing counter. Inc/Add are single
// atomic adds.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the full metric name (including any label).
func (c *Counter) Name() string { return c.name }

// Gauge is a value that can go up and down. All mutators are single
// atomic operations.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the full metric name.
func (g *Gauge) Name() string { return g.name }

// Counter returns the counter registered under name, creating it with
// help on first use. Registering the same name as a different metric
// kind panics — a programming error, not an input condition.
func (r *Registry) Counter(name, help string) *Counter {
	if m, ok := r.metrics.Load(name); ok {
		return mustKind[*Counter](name, m)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics.Load(name); ok {
		return mustKind[*Counter](name, m)
	}
	c := &Counter{name: name, help: help}
	r.metrics.Store(name, c)
	return c
}

// Gauge returns the gauge registered under name, creating it with help
// on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if m, ok := r.metrics.Load(name); ok {
		return mustKind[*Gauge](name, m)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics.Load(name); ok {
		return mustKind[*Gauge](name, m)
	}
	g := &Gauge{name: name, help: help}
	r.metrics.Store(name, g)
	return g
}

// Histogram returns the histogram registered under name, creating it with
// help and the given ascending bucket upper bounds on first use (an
// implicit +Inf bucket is always appended). Later calls ignore bounds and
// return the existing histogram.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if m, ok := r.metrics.Load(name); ok {
		return mustKind[*Histogram](name, m)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics.Load(name); ok {
		return mustKind[*Histogram](name, m)
	}
	h := newHistogram(name, help, bounds)
	r.metrics.Store(name, h)
	return h
}

func mustKind[T any](name string, m any) T {
	t, ok := m.(T)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return t
}

// sortedNames returns every registered metric name in lexical order, so
// exposition output is deterministic.
func (r *Registry) sortedNames() []string {
	var names []string
	r.metrics.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}
