// Package obs is the pipeline-wide observability layer: a metrics
// registry of lock-free counters, gauges and fixed-bucket histograms, a
// lightweight tracing-span tree over the analysis pipeline stages, and
// exporters (Prometheus text exposition and JSON). It is dependency-free
// (standard library only) so every other package — guard, core, engine,
// transim, the CLIs — can instrument itself without import cycles.
//
// Design constraints, in order:
//
//   - The hot path must stay hot. Recording a counter or histogram sample
//     is a single atomic add (plus one for the histogram running sum) —
//     no locks, no allocation. Registration (get-or-create by name) is
//     the only synchronized operation and is meant to be done once, in
//     package variables.
//   - Everything is optional. With no Trace in the context, StartSpan
//     returns a nil *Span whose methods are no-ops; with the global
//     Enabled switch off, instrumentation sites skip their time.Now calls
//     and metric writes entirely, so the uninstrumented baseline remains
//     measurable (see `make obs-check`).
//   - Exposition never blocks recording. Readers snapshot atomics; a
//     concurrent exposition dump observes a consistent-enough point-in-
//     time view without stalling workers.
package obs

import (
	"sync/atomic"
	"time"
)

// enabled is the global instrumentation switch. It defaults to on; the
// overhead benchmark (BenchmarkAnalyzeTreeParallelBaseline) turns it off
// to measure the uninstrumented hot path.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// On reports whether instrumentation is enabled. Hot-path call sites gate
// their metric writes (and time.Now calls) on it; the check itself is a
// single atomic load.
func On() bool { return enabled.Load() }

// SetEnabled flips the global instrumentation switch. Off means
// instrumentation sites record nothing; metrics already registered keep
// their values.
func SetEnabled(v bool) { enabled.Store(v) }

// now is the clock used for spans and timed sections, swappable in tests
// for deterministic trace output.
var now = time.Now

// defaultRegistry is the process-wide registry all instrumented packages
// share; CLIs dump it at exit.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }
