package obs

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are nanosecond upper bounds covering 1 µs to 10 s
// in roughly half-decade steps — wide enough for a cache hit on a tiny
// tree and a multi-second transient simulation to land in distinct
// buckets.
var DefaultLatencyBuckets = []int64{
	1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6,
	1e7, 3e7, 1e8, 3e8, 1e9, 3e9, 1e10,
}

// WorkerBuckets are upper bounds for pool-width histograms.
var WorkerBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// Histogram is a fixed-bucket histogram over int64 samples (typically
// nanoseconds). Observe is lock-free and allocation-free: a linear scan
// over a handful of bounds, then one atomic add on the bucket and one on
// the running sum. The count is derived from the bucket totals at
// snapshot time, so a concurrent reader may see a sample's bucket before
// its sum — an acceptable skew for monitoring.
type Histogram struct {
	name, help string
	bounds     []int64 // ascending upper bounds; +Inf bucket implicit
	counts     []atomic.Uint64
	sum        atomic.Int64
}

func newHistogram(name, help string, bounds []int64) *Histogram {
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed nanoseconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(int64(now().Sub(t0)))
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// histSnapshot is a point-in-time copy of the histogram's state.
type histSnapshot struct {
	bounds []int64
	counts []uint64 // per-bucket (non-cumulative), len(bounds)+1
	sum    int64
	count  uint64
}

func (h *Histogram) snapshot() histSnapshot {
	s := histSnapshot{
		bounds: h.bounds,
		counts: make([]uint64, len(h.counts)),
		sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
		s.count += s.counts[i]
	}
	return s
}

// Count returns the total number of samples recorded.
func (h *Histogram) Count() uint64 { return h.snapshot().count }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }
