package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// pprofListeners counts live pprof HTTP listeners, so tests can assert
// that "flag off" really means zero listeners and zero background work.
var pprofListeners atomic.Int32

// PprofListeners returns the number of live pprof listeners started by
// StartPprof. It is zero unless a CLI was launched with -pprof.
func PprofListeners() int { return int(pprofListeners.Load()) }

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060").
// An empty addr is the documented off state: no listener is opened, no
// goroutine started, and the returned shutdown func is nil. Handlers are
// mounted on a private mux, not http.DefaultServeMux, so the process
// exposes nothing else. It returns the bound address (useful with ":0")
// and a shutdown func that closes the listener.
func StartPprof(addr string) (shutdown func() error, boundAddr string, err error) {
	if addr == "" {
		return nil, "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	pprofListeners.Add(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer pprofListeners.Add(-1)
		srv.Serve(ln) // returns on shutdown; error is expected then
	}()
	shutdown = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		<-done
		return err
	}
	return shutdown, ln.Addr().String(), nil
}
