package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerPrometheusAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("eed_test_requests_total", "test counter").Add(3)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(url string) (int, string, string) {
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), b.String()
	}

	code, ctype, body := get(srv.URL)
	if code != 200 || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("text form: code=%d ctype=%q", code, ctype)
	}
	if !strings.Contains(body, "eed_test_requests_total 3") {
		t.Fatalf("text exposition missing counter:\n%s", body)
	}

	code, ctype, body = get(srv.URL + "?format=json")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("json form: code=%d ctype=%q", code, ctype)
	}
	if !strings.Contains(body, `"eed_test_requests_total": 3`) {
		t.Fatalf("json exposition missing counter:\n%s", body)
	}

	resp, err := srv.Client().Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST: code=%d, want 405", resp.StatusCode)
	}
}
