package obs

import (
	"fmt"
	"io"
	"net/http"
	"testing"
)

// TestPprofOffIsFree: the documented off state (empty address) opens no
// listener and starts no goroutine.
func TestPprofOffIsFree(t *testing.T) {
	if n := PprofListeners(); n != 0 {
		t.Fatalf("pre-existing pprof listeners: %d", n)
	}
	stop, addr, err := StartPprof("")
	if err != nil || stop != nil || addr != "" {
		t.Fatalf("StartPprof(\"\") = (stop!=nil:%v, %q, %v), want (nil, \"\", nil)", stop != nil, addr, err)
	}
	if n := PprofListeners(); n != 0 {
		t.Fatalf("pprof listeners after off start: %d, want 0", n)
	}
}

func TestPprofServesAndShutsDown(t *testing.T) {
	stop, addr, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if n := PprofListeners(); n != 1 {
		t.Fatalf("listeners while serving = %d, want 1", n)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("empty pprof index")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if n := PprofListeners(); n != 0 {
		t.Fatalf("listeners after shutdown = %d, want 0", n)
	}
}

func TestPprofBadAddress(t *testing.T) {
	if _, _, err := StartPprof("256.256.256.256:99999"); err == nil {
		t.Fatal("nonsense address must fail")
	}
	if n := PprofListeners(); n != 0 {
		t.Fatalf("failed start leaked a listener count: %d", n)
	}
}
