package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestLabel(t *testing.T) {
	cases := []struct{ name, key, value, want string }{
		{"m_total", "class", "parse", `m_total{class="parse"}`},
		{"m_total", "k", `a"b`, `m_total{k="a\"b"}`},
		{"m_total", "k", `a\b`, `m_total{k="a\\b"}`},
	}
	for _, c := range cases {
		if got := Label(c.name, c.key, c.value); got != c.want {
			t.Errorf("Label(%q,%q,%q) = %q, want %q", c.name, c.key, c.value, got, c.want)
		}
	}
	if got := familyOf(`m_total{class="parse"}`); got != "m_total" {
		t.Errorf("familyOf = %q, want m_total", got)
	}
	if got := familyOf("plain"); got != "plain" {
		t.Errorf("familyOf(plain) = %q", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("c_total", "help")
	c2 := r.Counter("c_total", "ignored on second call")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	g1 := r.Gauge("g", "help")
	if g1 != r.Gauge("g", "") {
		t.Fatal("same name must return the same gauge")
	}
	h1 := r.Histogram("h", "help", []int64{1, 2})
	if h1 != r.Histogram("h", "", nil) {
		t.Fatal("same name must return the same histogram")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestGaugeOps(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if v := g.Value(); v != 2 {
		t.Fatalf("gauge = %d, want 2", v)
	}
	if g.Name() != "g" {
		t.Fatalf("Name() = %q", g.Name())
	}
}

// TestRegistryConcurrency hammers get-or-create and the hot-path mutators
// from many goroutines; run with -race this verifies the lock-free design.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				r.Counter("c_total", "h").Inc()
				r.Gauge("g", "h").Add(1)
				r.Histogram("h", "h", DefaultLatencyBuckets).Observe(int64(j))
			}
		}()
	}
	// A concurrent reader must never block or race with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	const want = goroutines * iters
	if v := r.Counter("c_total", "h").Value(); v != want {
		t.Fatalf("counter = %d, want %d", v, want)
	}
	if v := r.Gauge("g", "h").Value(); v != want {
		t.Fatalf("gauge = %d, want %d", v, want)
	}
	if n := r.Histogram("h", "h", nil).Count(); n != want {
		t.Fatalf("histogram count = %d, want %d", n, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram("h", "help", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 101, 1e9} {
		h.Observe(v)
	}
	s := h.snapshot()
	// Buckets are (≤10], (10,100], (100,+Inf): 2, 2, 2.
	want := []uint64{2, 2, 2}
	for i, w := range want {
		if s.counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.counts[i], w)
		}
	}
	if s.count != 6 {
		t.Errorf("count = %d, want 6", s.count)
	}
	if wantSum := int64(5 + 10 + 11 + 100 + 101 + 1e9); s.sum != wantSum {
		t.Errorf("sum = %d, want %d", s.sum, wantSum)
	}
	if h.Count() != 6 || h.Sum() != s.sum {
		t.Errorf("Count/Sum accessors disagree with snapshot")
	}
}

func TestEnabledSwitch(t *testing.T) {
	if !On() {
		t.Fatal("instrumentation must default to on")
	}
	SetEnabled(false)
	if On() {
		t.Fatal("SetEnabled(false) must turn On() off")
	}
	SetEnabled(true)
	if !On() {
		t.Fatal("SetEnabled(true) must turn On() back on")
	}
}
