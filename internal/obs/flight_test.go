package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRoundsRingToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {1000, 1024}, {1024, 1024},
	} {
		if got := NewFlightRecorder(tc.in, 4, 0).Len(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Len() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFlightRecorderRecordAndSnapshot(t *testing.T) {
	f := NewFlightRecorder(16, 4, time.Second)
	for i := 0; i < 5; i++ {
		ev := WideEvent{RequestID: fmt.Sprintf("req-%d", i), Route: "/v1/delay", Status: 200, TotalNS: 1000}
		if seq := f.Record(&ev, nil); seq != uint64(i+1) {
			t.Fatalf("Record #%d returned seq %d", i, seq)
		}
	}
	got := f.Snapshot(Filter{})
	if len(got) != 5 {
		t.Fatalf("Snapshot returned %d events, want 5", len(got))
	}
	// Newest first.
	for i, ev := range got {
		if want := uint64(5 - i); ev.Seq != want {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if got[0].RequestID != "req-4" || got[4].RequestID != "req-0" {
		t.Errorf("unexpected ordering: first=%s last=%s", got[0].RequestID, got[4].RequestID)
	}
}

func TestFlightRecorderRingWraps(t *testing.T) {
	f := NewFlightRecorder(16, 4, time.Second)
	for i := 0; i < 40; i++ {
		f.Record(&WideEvent{Status: 200}, nil)
	}
	got := f.Snapshot(Filter{})
	if len(got) != 16 {
		t.Fatalf("after wrap Snapshot returned %d events, want 16", len(got))
	}
	if got[0].Seq != 40 || got[15].Seq != 25 {
		t.Errorf("retained seqs [%d..%d], want [40..25]", got[0].Seq, got[15].Seq)
	}
}

func TestFlightRecorderFilters(t *testing.T) {
	f := NewFlightRecorder(64, 4, time.Second)
	f.Record(&WideEvent{RequestID: "a", Route: "/v1/delay", Status: 200}, nil)
	f.Record(&WideEvent{RequestID: "b", Route: "/v1/edit", Status: 504, Class: "timeout"}, nil)
	f.Record(&WideEvent{RequestID: "b", Route: "/v1/edit", Status: 200}, nil)
	f.Record(&WideEvent{RequestID: "c", Route: "/v1/delay", Status: 400, Class: "parse"}, nil)

	if got := f.Snapshot(Filter{Status: 504}); len(got) != 1 || got[0].RequestID != "b" {
		t.Errorf("Status filter: got %+v", got)
	}
	if got := f.Snapshot(Filter{Class: "parse"}); len(got) != 1 || got[0].RequestID != "c" {
		t.Errorf("Class filter: got %+v", got)
	}
	if got := f.Snapshot(Filter{Route: "/v1/edit"}); len(got) != 2 {
		t.Errorf("Route filter: got %d events, want 2", len(got))
	}
	if got := f.Snapshot(Filter{RequestID: "b"}); len(got) != 2 {
		t.Errorf("RequestID filter: got %d events, want 2", len(got))
	}
	if got := f.Snapshot(Filter{N: 2}); len(got) != 2 || got[0].Seq != 4 {
		t.Errorf("N filter: got %d events, first seq %d", len(got), got[0].Seq)
	}
}

func TestFlightRecorderCapturesErrorsAndSlow(t *testing.T) {
	f := NewFlightRecorder(16, 2, time.Millisecond)
	// Fast success: not captured.
	ok := WideEvent{RequestID: "ok", Status: 200, TotalNS: 10}
	f.Record(&ok, nil)
	if ok.Captured {
		t.Error("fast success marked Captured")
	}
	// Error with a traced span tree: captured.
	tr := NewTrace("request")
	sp, _ := StartSpan(WithTrace(context.Background(), tr), "analyze")
	sp.End()
	tr.Finish()
	errEv := WideEvent{RequestID: "boom", Status: 504, Class: "timeout", TotalNS: 10}
	f.Record(&errEv, tr)
	if !errEv.Captured {
		t.Error("504 not marked Captured")
	}
	// Slow success: captured, no trace.
	slow := WideEvent{RequestID: "slow", Status: 200, TotalNS: int64(2 * time.Millisecond)}
	f.Record(&slow, nil)

	caps := f.Captures()
	if len(caps) != 2 {
		t.Fatalf("Captures returned %d, want 2 (bounded)", len(caps))
	}
	if caps[0].Event.RequestID != "slow" || caps[1].Event.RequestID != "boom" {
		t.Errorf("capture order: got %s, %s", caps[0].Event.RequestID, caps[1].Event.RequestID)
	}
	if caps[1].Spans == nil {
		t.Fatal("traced capture lost its span tree")
	}
	if len(caps[1].Spans.Children) != 1 || caps[1].Spans.Children[0].Name != "analyze" {
		t.Errorf("span tree mismatch: %+v", caps[1].Spans)
	}
	if caps[0].Spans != nil {
		t.Error("untraced capture grew a span tree")
	}
}

func TestFlightRecorderCapturesPipelineClassFailures(t *testing.T) {
	// Pipeline units have no HTTP status; a guard class alone must
	// qualify for capture.
	f := NewFlightRecorder(16, 4, time.Second)
	ev := WideEvent{RequestID: "net42", Class: "numeric"}
	f.Record(&ev, nil)
	if !ev.Captured {
		t.Error("classed pipeline failure not captured")
	}
}

func TestWideEventStagesInline(t *testing.T) {
	var ev WideEvent
	for i := 0; i < maxStages+3; i++ {
		ev.AddStage(fmt.Sprintf("s%d", i), time.Duration(i+1))
	}
	if got := len(ev.Stages()); got != maxStages {
		t.Fatalf("Stages() len %d, want capped at %d", got, maxStages)
	}
	b, err := json.Marshal(&ev)
	if err != nil {
		t.Fatal(err)
	}
	var back WideEvent
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Stages()) != maxStages || back.Stages()[0] != (StageDur{Name: "s0", NS: 1}) {
		t.Errorf("round-trip stages mismatch: %+v", back.Stages())
	}
}

func TestWideEventSettersNilSafe(t *testing.T) {
	var ev *WideEvent
	ev.SetNet("n")
	ev.SetStatus(200)
	ev.SetClass("c")
	ev.SetDegraded("d")
	ev.SetCache("hit")
	ev.SetErr(fmt.Errorf("x"))
	ev.AddStage("s", 1)
	if ev.Stages() != nil {
		t.Error("nil event returned stages")
	}
	if f := (*FlightRecorder)(nil); f.Record(&WideEvent{}, nil) != 0 || f.Snapshot(Filter{}) != nil || f.Captures() != nil {
		t.Error("nil recorder not inert")
	}
}

func TestEventFromContext(t *testing.T) {
	if EventFrom(context.Background()) != nil {
		t.Error("empty context yielded an event")
	}
	ev := &WideEvent{RequestID: "r"}
	ctx := WithEvent(context.Background(), ev)
	if got := EventFrom(ctx); got != ev {
		t.Errorf("EventFrom = %p, want %p", got, ev)
	}
	if WithEvent(context.Background(), nil) != context.Background() {
		t.Error("WithEvent(nil) should return ctx unchanged")
	}
}

// TestFlightRecorderConcurrent is the race-mode reader/writer test: many
// goroutines record while others snapshot and read captures. Run under
// `go test -race ./internal/obs/` it proves the ring is data-race free.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64, 8, time.Millisecond)
	const writers, readers, perWriter = 4, 2, 500
	var writeWG, readWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				ev := WideEvent{RequestID: fmt.Sprintf("w%d-%d", w, i), Route: "/v1/delay", Status: 200 + 304*(i%2), TotalNS: int64(i)}
				ev.AddStage("analyze", time.Duration(i))
				f.Record(&ev, nil)
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := f.Snapshot(Filter{Status: 504, N: 10})
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq >= evs[i-1].Seq {
						t.Errorf("snapshot not strictly newest-first: %d then %d", evs[i-1].Seq, evs[i].Seq)
						return
					}
				}
				f.Captures()
			}
		}()
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if got := f.seq.Load(); got != writers*perWriter {
		t.Errorf("recorded %d events, want %d", got, writers*perWriter)
	}
}
