package obs

import "net/http"

// Handler returns an http.Handler serving the registry's metrics — the
// mount point for a long-running service's /metrics endpoint, where the
// CLIs use DumpPrometheus at exit. The Prometheus text exposition is the
// default; `?format=json` selects the JSON form. Exposition snapshots
// atomics and never blocks recording, so scraping a loaded server is
// safe.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
