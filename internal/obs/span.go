package obs

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Trace is a tree of Spans covering one pipeline run (one CLI invocation,
// one request). Create it with NewTrace, attach it to a context with
// WithTrace, and let the pipeline stages open child spans with StartSpan.
// Tracing is strictly opt-in: without a Trace in the context StartSpan
// returns a nil *Span, and every *Span method is nil-safe, so instrumented
// code pays one context lookup per stage and nothing else.
type Trace struct {
	root *Span
}

// Span is one timed pipeline stage. Fields are recorded via the setters
// (nil-safe) and serialized by Trace.WriteJSON.
type Span struct {
	mu       sync.Mutex
	name     string
	label    string // free-form identifier, e.g. the input path
	outcome  string // "ok", "degraded", "hit", "miss", or a guard class
	sections int64  // tree sections this stage worked on, when known
	workers  int64  // worker-pool width, when relevant
	start    time.Time
	dur      time.Duration
	children []*Span
}

type spanKey struct{}

// NewTrace starts a trace whose root span is named name.
func NewTrace(name string) *Trace {
	return &Trace{root: &Span{name: name, start: now()}}
}

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Finish ends the root span; call it once the pipeline is done, before
// WriteJSON.
func (t *Trace) Finish() { t.root.End() }

// WithTrace returns a context carrying the trace; spans started from it
// attach under the root.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, t.root)
}

// StartSpan opens a child span under the span carried by ctx and returns
// it along with a derived context for the stage's own children. With no
// span in ctx it returns (nil, ctx): the nil span's methods are no-ops,
// so call sites need no conditionals.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return nil, ctx
	}
	s := &Span{name: name, start: now()}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return s, context.WithValue(ctx, spanKey{}, s)
}

// SetLabel attaches a free-form identifier (e.g. the input path).
func (s *Span) SetLabel(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.label = label
	s.mu.Unlock()
}

// SetSections records how many tree sections the stage worked on.
func (s *Span) SetSections(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.sections = int64(n)
	s.mu.Unlock()
}

// SetWorkers records the worker-pool width the stage used.
func (s *Span) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.workers = int64(n)
	s.mu.Unlock()
}

// SetOutcome records the stage outcome without ending the span.
func (s *Span) SetOutcome(outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.outcome = outcome
	s.mu.Unlock()
}

// End closes the span with outcome "ok" unless one was already set. The
// recorded duration is clamped to ≥ 1 ns so even instantaneous stages
// are visibly non-zero in the trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.dur == 0 {
		if s.dur = now().Sub(s.start); s.dur < time.Nanosecond {
			s.dur = time.Nanosecond
		}
	}
	if s.outcome == "" {
		s.outcome = "ok"
	}
	s.mu.Unlock()
}

// EndWith sets the outcome and closes the span.
func (s *Span) EndWith(outcome string) {
	s.SetOutcome(outcome)
	s.End()
}

// SpanNode is the serialized form of a span, also served by the flight
// recorder's capture buffer. Start offsets are relative to the root
// span's start so traces are comparable across runs.
type SpanNode struct {
	Name     string     `json:"name"`
	Label    string     `json:"label,omitempty"`
	Outcome  string     `json:"outcome"`
	Sections int64      `json:"sections,omitempty"`
	Workers  int64      `json:"workers,omitempty"`
	StartNS  int64      `json:"start_ns"`
	DurNS    int64      `json:"dur_ns"`
	Children []SpanNode `json:"children,omitempty"`
}

func (s *Span) toJSON(origin time.Time) SpanNode {
	s.mu.Lock()
	j := SpanNode{
		Name:     s.name,
		Label:    s.label,
		Outcome:  s.outcome,
		Sections: s.sections,
		Workers:  s.workers,
		StartNS:  int64(s.start.Sub(origin)),
		DurNS:    int64(s.dur),
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		j.Children = append(j.Children, c.toJSON(origin))
	}
	return j
}

// Tree returns the serialized span tree rooted at the trace's root.
// Spans still open serialize with their current fields and a zero
// duration; it is safe to call before Finish (the capture buffer does,
// for requests that error out mid-flight).
func (t *Trace) Tree() SpanNode { return t.root.toJSON(t.root.start) }

// WriteJSON writes the span tree as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.root.toJSON(t.root.start))
}

// DumpJSON writes the span tree to path ("-" means stdout).
func (t *Trace) DumpJSON(path string) error {
	if path == "-" {
		return t.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
