package obs

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the request-scoped half of the observability
// layer: where counters and histograms aggregate, the recorder keeps the
// last N *wide events* — one structured record per request or pipeline
// unit carrying everything needed to reconstruct that unit after the
// fact (request ID, route, net fingerprint, status, guard class,
// degradation reason, cache hit/miss, queue wait, per-stage durations,
// retry attempt). It is always on: Record costs one atomic sequence bump
// plus a copy into a preallocated slot under an uncontended per-slot
// mutex, and allocates nothing. Slow and error events additionally land
// in a small bounded capture buffer together with their full span tree,
// so the expensive evidence is retained exactly when it is interesting.

// maxStages bounds the per-stage duration breakdown carried inline by a
// WideEvent. Stages beyond the cap are dropped (the total still covers
// them); the inline array is what keeps Record allocation-free.
const maxStages = 8

// StageDur is one named stage duration inside a wide event.
type StageDur struct {
	Name string `json:"name"`
	NS   int64  `json:"ns"`
}

// WideEvent is one flight-recorder record. Events are built by exactly
// one goroutine (the request handler or pipeline worker that owns the
// unit of work) and handed to FlightRecorder.Record when the unit
// finishes; the setters are nil-safe so call sites deep in the stack can
// annotate the event from a context without conditionals.
type WideEvent struct {
	Seq       uint64 // assigned by Record
	StartNS   int64  // unix nanoseconds at unit start
	RequestID string
	Attempt   int // client retry attempt, 1-based; 0 = unknown
	Route     string
	Net       string // net fingerprint or name, when resolved
	Status    int    // HTTP status, or 0 for non-HTTP units
	Class     string // guard class on failure
	Degraded  string // degradation reason, e.g. "rc_elmore"
	Cache     string // "hit" or "miss" against the resident registry
	QueueNS   int64  // time spent waiting for an execution slot
	TotalNS   int64
	Err       string
	Captured  bool // true when the capture buffer retained the span tree

	nstages int
	stages  [maxStages]StageDur
}

// SetNet annotates the resolved net fingerprint or name.
func (e *WideEvent) SetNet(net string) {
	if e != nil {
		e.Net = net
	}
}

// SetStatus annotates the HTTP status.
func (e *WideEvent) SetStatus(status int) {
	if e != nil {
		e.Status = status
	}
}

// SetClass annotates the guard class of a failure.
func (e *WideEvent) SetClass(class string) {
	if e != nil {
		e.Class = class
	}
}

// SetDegraded annotates why the analysis degraded (e.g. "rc_elmore").
func (e *WideEvent) SetDegraded(reason string) {
	if e != nil {
		e.Degraded = reason
	}
}

// SetCache annotates the registry outcome: "hit" or "miss".
func (e *WideEvent) SetCache(outcome string) {
	if e != nil {
		e.Cache = outcome
	}
}

// SetErr annotates the failure message.
func (e *WideEvent) SetErr(err error) {
	if e != nil && err != nil {
		e.Err = err.Error()
	}
}

// AddStage appends one named stage duration. Stages beyond the inline
// capacity are dropped silently — the event's total still covers them.
func (e *WideEvent) AddStage(name string, d time.Duration) {
	if e == nil || e.nstages >= maxStages {
		return
	}
	e.stages[e.nstages] = StageDur{Name: name, NS: int64(d)}
	e.nstages++
}

// Stages returns the recorded stage durations. The slice aliases the
// event's inline storage; callers must not retain it past the event.
func (e *WideEvent) Stages() []StageDur {
	if e == nil {
		return nil
	}
	return e.stages[:e.nstages]
}

// wideEventJSON is the serialized form of a WideEvent.
type wideEventJSON struct {
	Seq       uint64     `json:"seq"`
	StartNS   int64      `json:"start_ns"`
	RequestID string     `json:"request_id,omitempty"`
	Attempt   int        `json:"attempt,omitempty"`
	Route     string     `json:"route,omitempty"`
	Net       string     `json:"net,omitempty"`
	Status    int        `json:"status,omitempty"`
	Class     string     `json:"class,omitempty"`
	Degraded  string     `json:"degraded,omitempty"`
	Cache     string     `json:"cache,omitempty"`
	QueueNS   int64      `json:"queue_ns,omitempty"`
	TotalNS   int64      `json:"total_ns"`
	Stages    []StageDur `json:"stages,omitempty"`
	Err       string     `json:"err,omitempty"`
	Captured  bool       `json:"captured,omitempty"`
}

func (e *WideEvent) toJSON() wideEventJSON {
	j := wideEventJSON{
		Seq:       e.Seq,
		StartNS:   e.StartNS,
		RequestID: e.RequestID,
		Attempt:   e.Attempt,
		Route:     e.Route,
		Net:       e.Net,
		Status:    e.Status,
		Class:     e.Class,
		Degraded:  e.Degraded,
		Cache:     e.Cache,
		QueueNS:   e.QueueNS,
		TotalNS:   e.TotalNS,
		Err:       e.Err,
		Captured:  e.Captured,
	}
	if e.nstages > 0 {
		j.Stages = append([]StageDur(nil), e.stages[:e.nstages]...)
	}
	return j
}

// MarshalJSON serializes the event including its inline stage array.
func (e *WideEvent) MarshalJSON() ([]byte, error) {
	return json.Marshal(e.toJSON())
}

// UnmarshalJSON is the inverse of MarshalJSON, for clients of the debug
// endpoints (tests, chipflow failure dumps).
func (e *WideEvent) UnmarshalJSON(b []byte) error {
	var j wideEventJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*e = WideEvent{
		Seq:       j.Seq,
		StartNS:   j.StartNS,
		RequestID: j.RequestID,
		Attempt:   j.Attempt,
		Route:     j.Route,
		Net:       j.Net,
		Status:    j.Status,
		Class:     j.Class,
		Degraded:  j.Degraded,
		Cache:     j.Cache,
		QueueNS:   j.QueueNS,
		TotalNS:   j.TotalNS,
		Err:       j.Err,
		Captured:  j.Captured,
	}
	for i, s := range j.Stages {
		if i >= maxStages {
			break
		}
		e.stages[i] = s
		e.nstages++
	}
	return nil
}

// Capture pairs an interesting (slow or failed) wide event with its full
// span tree, when the request was traced.
type Capture struct {
	Event WideEvent `json:"event"`
	Spans *SpanNode `json:"spans,omitempty"`
}

// flightSlot is one preallocated ring entry. The mutex is uncontended in
// steady state (two writers collide only after a full ring wrap between
// their sequence claims) so locking costs one CAS; it exists to make
// concurrent Snapshot reads race-clean.
type flightSlot struct {
	mu sync.Mutex
	ev WideEvent
}

// FlightRecorder is a fixed-size ring of wide events plus a bounded
// capture buffer for slow/error events. Record never blocks on readers
// for more than a slot copy and never allocates.
type FlightRecorder struct {
	slots  []flightSlot
	mask   uint64
	seq    atomic.Uint64
	slowNS int64

	capMu   sync.Mutex
	caps    []Capture
	capNext int
	capN    int
}

// DefaultSlowThreshold marks events slow enough to capture when the
// recorder is built with slow <= 0.
const DefaultSlowThreshold = 250 * time.Millisecond

// NewFlightRecorder builds a recorder with the given ring size (rounded
// up to a power of two, minimum 16), capture-buffer size (minimum 1),
// and slow-capture threshold (<= 0 selects DefaultSlowThreshold).
func NewFlightRecorder(size, captures int, slow time.Duration) *FlightRecorder {
	n := uint64(16)
	for int(n) < size {
		n <<= 1
	}
	if captures < 1 {
		captures = 1
	}
	if slow <= 0 {
		slow = DefaultSlowThreshold
	}
	return &FlightRecorder{
		slots:  make([]flightSlot, n),
		mask:   n - 1,
		slowNS: int64(slow),
		caps:   make([]Capture, captures),
	}
}

// Len returns the ring capacity.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// SlowThreshold returns the capture threshold.
func (f *FlightRecorder) SlowThreshold() time.Duration {
	if f == nil {
		return 0
	}
	return time.Duration(f.slowNS)
}

// Record stores one finished event in the ring and returns its sequence
// number. If the event is interesting — an error status, a non-empty
// guard class, or slower than the capture threshold — it also lands in
// the capture buffer together with tr's span tree (tr may be nil). The
// hot path (cold capture buffer) is one atomic bump plus a slot copy.
func (f *FlightRecorder) Record(ev *WideEvent, tr *Trace) uint64 {
	if f == nil || ev == nil {
		return 0
	}
	interesting := ev.Status >= 400 || (ev.Status == 0 && ev.Class != "") || ev.TotalNS > f.slowNS
	ev.Captured = interesting
	seq := f.seq.Add(1)
	ev.Seq = seq
	sl := &f.slots[(seq-1)&f.mask]
	sl.mu.Lock()
	sl.ev = *ev
	sl.mu.Unlock()
	if interesting {
		c := Capture{Event: *ev}
		if tr != nil {
			tree := tr.Tree()
			c.Spans = &tree
		}
		f.capMu.Lock()
		f.caps[f.capNext] = c
		f.capNext = (f.capNext + 1) % len(f.caps)
		if f.capN < len(f.caps) {
			f.capN++
		}
		f.capMu.Unlock()
	}
	return seq
}

// Filter selects events from a Snapshot. Zero values match everything.
type Filter struct {
	Status    int    // exact HTTP status; 0 matches any
	Class     string // exact guard class
	Route     string // exact route
	RequestID string // exact request ID
	N         int    // max events returned; 0 means all retained
}

func (q Filter) match(ev *WideEvent) bool {
	if q.Status != 0 && ev.Status != q.Status {
		return false
	}
	if q.Class != "" && ev.Class != q.Class {
		return false
	}
	if q.Route != "" && ev.Route != q.Route {
		return false
	}
	if q.RequestID != "" && ev.RequestID != q.RequestID {
		return false
	}
	return true
}

// Snapshot returns the retained events matching q, newest first. It is
// safe against concurrent Record calls; each slot is copied under its
// lock and slots overwritten mid-scan simply surface their newer event.
func (f *FlightRecorder) Snapshot(q Filter) []WideEvent {
	if f == nil {
		return nil
	}
	out := make([]WideEvent, 0, len(f.slots))
	for i := range f.slots {
		sl := &f.slots[i]
		sl.mu.Lock()
		ev := sl.ev
		sl.mu.Unlock()
		if ev.Seq == 0 || !q.match(&ev) {
			continue
		}
		out = append(out, ev)
	}
	sortEventsBySeqDesc(out)
	if q.N > 0 && len(out) > q.N {
		out = out[:q.N]
	}
	return out
}

// Captures returns the retained slow/error captures, newest first.
func (f *FlightRecorder) Captures() []Capture {
	if f == nil {
		return nil
	}
	f.capMu.Lock()
	defer f.capMu.Unlock()
	out := make([]Capture, 0, f.capN)
	for i := 0; i < f.capN; i++ {
		// capNext-1 is the newest; walk backwards.
		idx := (f.capNext - 1 - i + len(f.caps)*2) % len(f.caps)
		out = append(out, f.caps[idx])
	}
	return out
}

func sortEventsBySeqDesc(evs []WideEvent) {
	// Insertion sort: the ring scan yields runs that are already nearly
	// ordered, the slice is bounded by the ring size, and this avoids
	// pulling sort's interface boxing into the package.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Seq > evs[j-1].Seq; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// defaultFlight is the process-wide recorder, shared by eedsrv and the
// engine pipeline the way Default() is shared by metric sites.
var defaultFlight atomic.Pointer[FlightRecorder]

// Sizes of the process-wide recorder: enough ring to hold a burst worth
// of requests and enough captures to debug one incident, at ~300 KiB
// total resident cost.
const (
	DefaultFlightEvents   = 1024
	DefaultFlightCaptures = 64
)

func init() { defaultFlight.Store(NewFlightRecorder(DefaultFlightEvents, DefaultFlightCaptures, 0)) }

// DefaultFlight returns the process-wide flight recorder.
func DefaultFlight() *FlightRecorder { return defaultFlight.Load() }

// SetDefaultFlight swaps the process-wide recorder (e.g. to resize the
// ring from a CLI flag before serving).
func SetDefaultFlight(f *FlightRecorder) {
	if f != nil {
		defaultFlight.Store(f)
	}
}

// eventKey carries a *WideEvent through a context.
type eventKey struct{}

// WithEvent returns a context carrying ev, so layers below the request
// middleware can annotate the in-flight wide event.
func WithEvent(ctx context.Context, ev *WideEvent) context.Context {
	if ev == nil {
		return ctx
	}
	return context.WithValue(ctx, eventKey{}, ev)
}

// EventFrom returns the wide event carried by ctx, or nil. The returned
// pointer's setters are nil-safe, so call sites never need a check.
func EventFrom(ctx context.Context) *WideEvent {
	ev, _ := ctx.Value(eventKey{}).(*WideEvent)
	return ev
}

// DetachEvent shadows any wide event carried by ctx with nil. An event is
// owned by one goroutine; work that fans out (batch items) detaches so
// concurrent annotations cannot race on the parent's record.
func DetachEvent(ctx context.Context) context.Context {
	if EventFrom(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, eventKey{}, (*WideEvent)(nil))
}
