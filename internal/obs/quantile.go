package obs

import (
	"cmp"
	"math"
)

// Percentile returns the nearest-rank p-th percentile of sorted (ascending)
// samples: the smallest element with at least ceil(len*p/100) samples at
// or below it. p is clamped to [0, 100]; an empty slice yields the zero
// value. This is the one percentile implementation in the repository —
// the load harness, the batch summary, and the chaos report all rank
// with it, so their numbers agree by construction.
func Percentile[T cmp.Ordered](sorted []T, p int) T {
	var zero T
	if len(sorted) == 0 {
		return zero
	}
	idx := (len(sorted)*p + 99) / 100 // ceil(len*p/100), nearest-rank
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// Quantile estimates the q-th quantile (q in (0, 1]) of the recorded
// samples by linear interpolation inside the bucket where the rank
// falls, the same estimate Prometheus's histogram_quantile computes
// server-side. Samples landing in the +Inf bucket clamp the estimate to
// the highest finite bound. Returns NaN for an empty histogram or a
// non-finite q.
func (h *Histogram) Quantile(q float64) float64 {
	return h.snapshot().quantile(q)
}

func (s histSnapshot) quantile(q float64) float64 {
	if s.count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.count)
	cum := 0.0
	for i, c := range s.counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(s.bounds) {
			// Rank falls in the +Inf bucket: the best honest answer is
			// the largest finite bound (or NaN when there are none).
			if len(s.bounds) == 0 {
				return math.NaN()
			}
			return float64(s.bounds[len(s.bounds)-1])
		}
		lower := 0.0
		if i > 0 {
			lower = float64(s.bounds[i-1])
		}
		upper := float64(s.bounds[i])
		if c == 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return math.NaN() // unreachable: cum == count >= rank by the loop end
}
