package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` headers per
// metric family, counters and gauges as single samples, histograms as
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`. Output
// is sorted by metric name, so it is stable across runs and usable in
// golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, name := range r.sortedNames() {
		m, ok := r.metrics.Load(name)
		if !ok {
			continue
		}
		family := familyOf(name)
		switch m := m.(type) {
		case *Counter:
			if family != lastFamily {
				fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", family, m.help, family)
			}
			fmt.Fprintf(bw, "%s %d\n", name, m.Value())
		case *Gauge:
			if family != lastFamily {
				fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n", family, m.help, family)
			}
			fmt.Fprintf(bw, "%s %d\n", name, m.Value())
		case *Histogram:
			s := m.snapshot()
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n", family, m.help, family)
			cum := uint64(0)
			for i, b := range s.bounds {
				cum += s.counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", family, b, cum)
			}
			cum += s.counts[len(s.bounds)]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", family, cum)
			fmt.Fprintf(bw, "%s_sum %d\n", family, s.sum)
			fmt.Fprintf(bw, "%s_count %d\n", family, s.count)
			// Pre-computed quantile estimates as untyped companion
			// series, so dashboards without a PromQL evaluator (the
			// .json form, curl) still get latency percentiles. Skipped
			// for empty histograms, where the estimate is undefined.
			if s.count > 0 {
				for _, q := range expoQuantiles {
					fmt.Fprintf(bw, "%s_p%d %s\n", family, q.pct, formatQuantile(s.quantile(q.q)))
				}
			}
		}
		lastFamily = family
	}
	return bw.Flush()
}

// expoQuantiles are the quantile estimates both exposition forms attach
// to every non-empty histogram.
var expoQuantiles = []struct {
	pct int
	q   float64
}{{50, 0.50}, {95, 0.95}, {99, 0.99}}

// formatQuantile renders a quantile estimate with the shortest exact
// representation, so golden tests stay byte-stable.
func formatQuantile(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonHistogram is the JSON form of a histogram snapshot. The quantile
// fields are omitted for empty histograms (the estimate is undefined,
// and NaN is not representable in JSON).
type jsonHistogram struct {
	Buckets []jsonBucket `json:"buckets"`
	Sum     int64        `json:"sum"`
	Count   uint64       `json:"count"`
	P50     *float64     `json:"p50,omitempty"`
	P95     *float64     `json:"p95,omitempty"`
	P99     *float64     `json:"p99,omitempty"`
}

type jsonBucket struct {
	LE    string `json:"le"` // upper bound; "+Inf" for the overflow bucket
	Count uint64 `json:"count"`
}

// jsonDump is the JSON exposition schema: metric kind -> name -> value.
type jsonDump struct {
	Counters   map[string]uint64        `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]jsonHistogram `json:"histograms"`
}

// WriteJSON writes every registered metric as one JSON object with
// deterministic key order (encoding/json sorts map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	d := jsonDump{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]jsonHistogram{},
	}
	r.metrics.Range(func(k, v any) bool {
		switch m := v.(type) {
		case *Counter:
			d.Counters[k.(string)] = m.Value()
		case *Gauge:
			d.Gauges[k.(string)] = m.Value()
		case *Histogram:
			s := m.snapshot()
			jh := jsonHistogram{Sum: s.sum, Count: s.count}
			if s.count > 0 {
				p50, p95, p99 := s.quantile(0.50), s.quantile(0.95), s.quantile(0.99)
				jh.P50, jh.P95, jh.P99 = &p50, &p95, &p99
			}
			cum := uint64(0)
			for i, b := range s.bounds {
				cum += s.counts[i]
				jh.Buckets = append(jh.Buckets, jsonBucket{LE: fmt.Sprint(b), Count: cum})
			}
			cum += s.counts[len(s.bounds)]
			jh.Buckets = append(jh.Buckets, jsonBucket{LE: "+Inf", Count: cum})
			d.Histograms[k.(string)] = jh
		}
		return true
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DumpPrometheus writes the exposition dump to path ("-" means stdout).
// A path ending in .json gets the JSON form instead of the text
// exposition.
func (r *Registry) DumpPrometheus(path string) error {
	write := r.WritePrometheus
	if strings.HasSuffix(path, ".json") {
		write = r.WriteJSON
	}
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
