package incr

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"eedtree/internal/rlctree"
)

// replayInto replays every journal record the state has not yet seen,
// returning the new generation — the engine.Session catch-up path, inlined
// for tests.
func replayInto(t *testing.T, st *State, tree *rlctree.Tree, gen uint64) uint64 {
	t.Helper()
	recs, status := tree.RecordsSince(gen)
	if status != rlctree.JournalOK {
		t.Fatalf("journal not replayable: %v", status)
	}
	for _, rec := range recs {
		if err := st.ApplyRecord(rec); err != nil {
			t.Fatalf("ApplyRecord(%v@%d): %v", rec.Kind, rec.Index, err)
		}
	}
	return tree.Gen()
}

// randomSubtree builds a small random tree with names distinct from the
// main tree's (prefix p).
func randomSubtree(rng *rand.Rand, p string, n int) *rlctree.Tree {
	sub := rlctree.New()
	var secs []*rlctree.Section
	for i := 0; i < n; i++ {
		var parent *rlctree.Section
		if i > 0 {
			parent = secs[rng.Intn(len(secs))]
		}
		s := sub.MustAddSection(fmt.Sprintf("%s_%d", p, i), parent,
			rng.Float64()*20, rng.Float64()*2e-9, rng.Float64()*1e-13)
		secs = append(secs, s)
	}
	return sub
}

// TestRandomMixedStructuralBitEquality is the structural correctness
// contract: across ≥1500 interleaved value edits, leaf attaches, subtree
// attaches, detaches and splits, a state kept in sync purely by replaying
// the typed journal stays bit-identical to a from-scratch ElmoreSums of
// the mutated tree — checked at a random sink after every op (the lazy
// O(depth) path) and over the whole tree at intervals and at the end.
func TestRandomMixedStructuralBitEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	totalOps := 0
	for trial := 0; trial < 8; trial++ {
		tree := rlctree.Random(rng, rlctree.RandomSpec{
			Sections: 8 + rng.Intn(48), ChainP: 0.3 + rng.Float64()*0.6,
		})
		st, err := New(tree)
		if err != nil {
			t.Fatal(err)
		}
		gen := tree.Gen()
		var pool []*rlctree.Tree // detached subtrees awaiting re-attach
		for op := 0; op < 220; op++ {
			secs := tree.Sections()
			switch rng.Intn(8) {
			case 0, 1, 2: // value edit (keep these the majority, as in practice)
				s := secs[rng.Intn(len(secs))]
				v := rng.Float64() * 50
				var err error
				switch rng.Intn(3) {
				case 0:
					err = s.SetR(v)
				case 1:
					err = s.SetL(v)
				default:
					err = s.SetC(v)
				}
				if err != nil {
					t.Fatal(err)
				}
			case 3: // leaf attach
				parent := secs[rng.Intn(len(secs))]
				if _, err := tree.AttachLeaf(fmt.Sprintf("t%d_leaf%d", trial, op), parent,
					rng.Float64()*10, rng.Float64()*1e-9, rng.Float64()*1e-13); err != nil {
					t.Fatal(err)
				}
			case 4: // subtree attach: a fresh random tree or a pooled detach
				var sub *rlctree.Tree
				if len(pool) > 0 && rng.Intn(2) == 0 {
					sub = pool[len(pool)-1]
					pool = pool[:len(pool)-1]
				} else {
					sub = randomSubtree(rng, fmt.Sprintf("t%d_sub%d", trial, op), 1+rng.Intn(6))
				}
				parent := secs[rng.Intn(len(secs))]
				if _, err := tree.AttachSubtree(parent, sub); err != nil {
					t.Fatal(err)
				}
			case 5: // detach (never empty the tree)
				if tree.Len() < 3 {
					continue
				}
				sec := secs[1+rng.Intn(len(secs)-1)]
				if sub, err := tree.Detach(sec); err != nil {
					t.Fatal(err)
				} else if rng.Intn(2) == 0 {
					pool = append(pool, sub)
				}
			case 6: // split
				sec := secs[rng.Intn(len(secs))]
				if _, err := tree.SplitSection(sec, 2+rng.Intn(4)); err != nil {
					// Splitting a section twice collides on the "~i" names;
					// legal to attempt, nothing to replay.
					continue
				}
			default: // no-op round: nothing mutated, replay must be empty
			}
			gen = replayInto(t, st, tree, gen)
			totalOps++

			if st.Len() != tree.Len() {
				t.Fatalf("trial %d op %d: state has %d sections, tree %d", trial, op, st.Len(), tree.Len())
			}
			want := tree.ElmoreSums()
			q := rng.Intn(tree.Len())
			sr, sl, ctot, err := st.SumsAt(q)
			if err != nil {
				t.Fatal(err)
			}
			if !bitEq(sr, want.SR[q]) || !bitEq(sl, want.SL[q]) || !bitEq(ctot, want.Ctot[q]) {
				t.Fatalf("trial %d op %d: SumsAt(%d) = %x/%x/%x, want %x/%x/%x",
					trial, op, q,
					math.Float64bits(sr), math.Float64bits(sl), math.Float64bits(ctot),
					math.Float64bits(want.SR[q]), math.Float64bits(want.SL[q]), math.Float64bits(want.Ctot[q]))
			}
			if rng.Intn(9) == 0 {
				requireSumsBitEqual(t, st.Sums(), want, "full sums after structural op")
			}
		}
		requireSumsBitEqual(t, st.Sums(), tree.ElmoreSums(), "end of trial")
	}
	if totalOps < 1500 {
		t.Fatalf("property test covered only %d ops, want ≥ 1500", totalOps)
	}
	st := func() Stats { // a sanity peek that structural paths actually ran
		tree := rlctree.Random(rng, rlctree.RandomSpec{Sections: 8})
		s, _ := New(tree)
		g := tree.Gen()
		sub, _ := tree.Detach(tree.Sections()[4])
		_, _ = tree.AttachSubtree(tree.Sections()[0], sub)
		_, _ = tree.SplitSection(tree.Sections()[1], 3)
		replayInto(t, s, tree, g)
		return s.Stats()
	}()
	if st.Detaches == 0 || st.Attaches == 0 || st.Splits == 0 {
		t.Fatalf("structural stats not counted: %+v", st)
	}
}

// TestApplyRecordStatsAndErrors covers the defensive paths: mismatched
// records are rejected (the session then resynchronizes) and counters
// advance per structural kind.
func TestApplyRecordStatsAndErrors(t *testing.T) {
	tree, err := rlctree.Line("w", 8, rlctree.SectionValues{R: 1, L: 1e-9, C: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(tree)
	if err != nil {
		t.Fatal(err)
	}
	// An attach record that does not extend the state.
	if err := st.ApplyRecord(rlctree.Record{Kind: rlctree.RecordAttach, Index: 3, Count: 1}); err == nil {
		t.Fatal("misaligned attach must fail")
	}
	// A detach with no payload, and one out of range.
	if err := st.ApplyRecord(rlctree.Record{Kind: rlctree.RecordDetach, Index: 2}); err == nil {
		t.Fatal("detach without removed set must fail")
	}
	if err := st.ApplyRecord(rlctree.Record{Kind: rlctree.RecordDetach, Index: 99,
		Multi: &rlctree.MultiRecord{Removed: []int32{99}}}); err == nil {
		t.Fatal("out-of-range detach must fail")
	}
	// A split out of range.
	if err := st.ApplyRecord(rlctree.Record{Kind: rlctree.RecordSplit, Index: 99, Count: 2}); err == nil {
		t.Fatal("out-of-range split must fail")
	}
	if err := st.ApplyRecord(rlctree.Record{Kind: rlctree.RecordKind(9)}); err == nil {
		t.Fatal("unknown record kind must fail")
	}
	if got := st.Stats(); got.Attaches != 0 || got.Detaches != 0 || got.Splits != 0 {
		t.Fatalf("failed records must not count: %+v", got)
	}
}

// FuzzStructuralEdits drives arbitrary interleavings of value edits,
// attach, detach and split decoded from raw bytes through the journal
// replay path, asserting exact-bits agreement with from-scratch
// ElmoreSums after every op. Registered in `make fuzz-smoke`.
func FuzzStructuralEdits(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 3, 100}) // SetR(3) = 100
	f.Add([]byte{0x01, 0, 7})   // AttachLeaf under s0
	f.Add([]byte{0x02, 5})      // Detach s5
	f.Add([]byte{0x03, 2, 3})   // Split s2 into 3
	f.Add([]byte{0x04, 1, 4})   // AttachSubtree(4 sections) under s1
	f.Add([]byte{0x02, 7, 0x04, 0, 3, 0x02, 1, 0x03, 0, 2, 0x00, 0, 9})
	f.Fuzz(func(t *testing.T, input []byte) {
		tree, err := rlctree.Line("s", 8, rlctree.SectionValues{R: 2, L: 1e-9, C: 5e-15})
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(tree)
		if err != nil {
			t.Fatal(err)
		}
		gen := tree.Gen()
		serial := 0
		// Bound the work per input: every op runs a from-scratch O(n)
		// cross-check, so an unbounded op stream would be quadratic in the
		// input size and starve the fuzz budget.
		for ops := 0; len(input) > 0 && ops < 256; ops++ {
			op := input[0]
			input = input[1:]
			arg := func() int {
				if len(input) == 0 {
					return 0
				}
				v := int(input[0])
				input = input[1:]
				return v
			}
			secs := tree.Sections()
			switch op % 5 {
			case 0: // value edit
				sec := secs[arg()%len(secs)]
				v := float64(arg())
				var serr error
				switch op / 5 % 3 {
				case 0:
					serr = sec.SetR(v)
				case 1:
					serr = sec.SetL(v)
				default:
					serr = sec.SetC(v * 1e-15)
				}
				if serr != nil {
					t.Fatal(serr)
				}
			case 1: // leaf attach
				parent := secs[arg()%len(secs)]
				serial++
				if _, err := tree.AttachLeaf(fmt.Sprintf("f%d", serial), parent,
					1, 0, float64(arg())*1e-15); err != nil {
					t.Fatal(err)
				}
			case 2: // detach (keep at least two sections)
				if tree.Len() < 3 {
					continue
				}
				sec := secs[1+arg()%(len(secs)-1)]
				if _, err := tree.Detach(sec); err != nil {
					t.Fatal(err)
				}
			case 3: // split
				sec := secs[arg()%len(secs)]
				if _, err := tree.SplitSection(sec, 2+arg()%3); err != nil {
					// Name collision with an earlier split of the same
					// section is legal input; skip.
					continue
				}
			default: // subtree attach
				parent := secs[arg()%len(secs)]
				serial++
				sub := rlctree.New()
				var prev *rlctree.Section
				for i := 0; i <= arg()%4; i++ {
					prev = sub.MustAddSection(fmt.Sprintf("g%d_%d", serial, i), prev,
						1, 1e-10, 2e-15)
				}
				if _, err := tree.AttachSubtree(parent, sub); err != nil {
					t.Fatal(err)
				}
			}
			recs, status := tree.RecordsSince(gen)
			if status != rlctree.JournalOK {
				t.Fatalf("journal not replayable mid-stream: %v", status)
			}
			for _, rec := range recs {
				if err := st.ApplyRecord(rec); err != nil {
					t.Fatalf("ApplyRecord(%v@%d): %v", rec.Kind, rec.Index, err)
				}
			}
			gen = tree.Gen()

			want := tree.ElmoreSums()
			q := (serial + tree.Len()) % tree.Len()
			sr, sl, ctot, err := st.SumsAt(q)
			if err != nil {
				t.Fatal(err)
			}
			if !bitEq(sr, want.SR[q]) || !bitEq(sl, want.SL[q]) || !bitEq(ctot, want.Ctot[q]) {
				t.Fatalf("SumsAt(%d) diverged after %v: %x/%x/%x vs %x/%x/%x", q, op%5,
					math.Float64bits(sr), math.Float64bits(sl), math.Float64bits(ctot),
					math.Float64bits(want.SR[q]), math.Float64bits(want.SL[q]), math.Float64bits(want.Ctot[q]))
			}
		}
		full := st.Sums()
		want := tree.ElmoreSums()
		for i := range want.SR {
			if !bitEq(full.SR[i], want.SR[i]) || !bitEq(full.SL[i], want.SL[i]) || !bitEq(full.Ctot[i], want.Ctot[i]) {
				t.Fatalf("final sums diverge at node %d", i)
			}
		}
	})
}
