// Package incr is the incremental analysis kernel: it keeps the paper's
// two per-node summations S_R and S_L (Appendix, eqs. 50–53) live across
// element edits of an RLC tree instead of recomputing them from zero. The
// summations are recursively maintainable — that is the paper's central
// observation — so a synthesis loop that perturbs one element per
// candidate pays O(depth) (or O(subtree)) per edit, not the O(n) two-pass
// sweep plus tree rebuild that a from-scratch evaluation costs.
//
// # Delta-update rules
//
// Write path(i) for the sections from the input to node i inclusive, and
// Ctot(w) for the total capacitance at or below section w. The Appendix
// recursions give
//
//	S_R(i) = Σ_{w ∈ path(i)} R_w·Ctot(w)
//	S_L(i) = Σ_{w ∈ path(i)} L_w·Ctot(w)
//
// From these, three exact perturbation rules follow:
//
//   - ΔR on section x: Ctot is unchanged, and x ∈ path(i) iff i is in the
//     subtree of x, so S_R(i) changes by ΔR·Ctot(x) exactly for the nodes
//     of subtree(x) — an O(subtree) update (S_L is untouched). For a
//     single queried sink the change is O(1) given Ctot: either x is on
//     the sink's path (add ΔR·Ctot(x)) or the sum is unchanged.
//
//   - ΔL on section x: symmetric, S_L(i) += ΔL·Ctot(x) over subtree(x).
//
//   - ΔC on section x: Ctot(w) changes by ΔC exactly for w ∈ path(x), so
//     S_R(i) changes by ΔC·Σ_{w ∈ path(i) ∩ path(x)} R_w = ΔC·R_ix — the
//     common-path resistance of i and x (and S_L(i) by ΔC·L_ix). A
//     capacitance edit therefore touches the sums of every node sharing
//     any path prefix with x; maintaining Ctot costs O(depth) and a
//     single-sink sum query costs O(depth), while refreshing all n sums
//     costs the same O(n) as one from-scratch top-down pass.
//
// # Bit-identical contract
//
// State guarantees that after any edit sequence its sums are bit-identical
// to rlctree.Tree.ElmoreSums on the equivalently edited tree. Floating-
// point addition is not associative, so the kernel never applies additive
// deltas to stored sums; instead every update recomputes the affected
// values through the same recurrences in the same accumulation order as
// the from-scratch pass (children folded in descending index order, the
// node's own term last; S_R(i) = S_R(parent) + R_i·Ctot(i)), restricted to
// the dirty region. S_R/S_L refreshes are eager for R/L edits (O(subtree))
// and lazy for C edits: a capacitance edit refolds Ctot along path(x) and
// marks the sums stale, after which single-sink queries walk the sink's
// path in O(depth) and whole-tree queries re-sweep once in O(n).
//
// State is not safe for concurrent use.
package incr

import (
	"math"

	"eedtree/internal/guard"
	"eedtree/internal/rlctree"
)

// Stats counts the work a State has performed, for tests and for the
// session-level metrics in internal/engine.
type Stats struct {
	EditsR, EditsL, EditsC uint64 // applied (non-no-op) element edits
	SubtreeUpdates         uint64 // eager O(subtree) S_R/S_L refreshes
	PathQueries            uint64 // lazy O(depth) single-sink sum queries
	FullSweeps             uint64 // lazy O(n) whole-tree S_R/S_L re-sweeps

	// Structural records folded in place (structural.go).
	Attaches, Detaches, Splits uint64
}

// State is a mutable snapshot of a tree's element values and summations in
// flat structure-of-arrays form. Build one with New, mutate it with
// SetR/SetL/SetC (or Apply for journal replay), and read sums with SumsAt
// or Sums. It holds no reference to the source tree; internal/engine's
// Session keeps a State synchronized with a live tree via the edit
// journal.
type State struct {
	parent []int32
	// First-child/next-sibling adjacency in descending index order, so a
	// traversal from childHead visits children exactly in the fold order
	// of the from-scratch bottom-up Ctot pass.
	childHead []int32
	childNext []int32

	r, l, c   []float64
	ctot      []float64 // always exact (bit-identical to DownstreamCaps)
	sr, sl    []float64 // valid only when srslValid
	srslValid bool

	// pathBuf is scratch for SumsAt path walks, reused across queries.
	pathBuf []int32

	stats Stats
}

// New builds a State from the tree's current element values and computes
// the initial summations with the same O(n) passes as ElmoreSums.
func New(t *rlctree.Tree) (*State, error) {
	n := t.Len()
	if n == 0 {
		return nil, guard.Newf(guard.ErrTopology, "incr", "empty tree")
	}
	r, l, c, parent := t.Arrays()
	s := &State{
		parent:    parent,
		childHead: make([]int32, n),
		childNext: make([]int32, n),
		r:         r,
		l:         l,
		c:         c,
		ctot:      make([]float64, n),
		sr:        make([]float64, n),
		sl:        make([]float64, n),
	}
	for i := range s.childHead {
		s.childHead[i] = -1
		s.childNext[i] = -1
	}
	// Ascending insertion order pushes each child onto its parent's list
	// head, leaving the largest index first — descending traversal order.
	for i := 0; i < n; i++ {
		if p := parent[i]; p >= 0 {
			s.childNext[i] = s.childHead[p]
			s.childHead[p] = int32(i)
		}
	}
	// Initial Ctot: identical accumulation order to DownstreamCaps.
	for i := n - 1; i >= 0; i-- {
		s.ctot[i] += c[i]
		if p := parent[i]; p >= 0 {
			s.ctot[p] += s.ctot[i]
		}
	}
	s.sweepSums()
	return s, nil
}

// Len returns the number of sections the state covers.
func (s *State) Len() int { return len(s.r) }

// Stats returns the work counters accumulated so far.
func (s *State) Stats() Stats { return s.stats }

// sweepSums recomputes S_R and S_L for every node from the maintained
// Ctot, in the exact order of ElmoreSums' top-down pass.
func (s *State) sweepSums() {
	for i := range s.sr {
		var baseR, baseL float64
		if p := s.parent[i]; p >= 0 {
			baseR = s.sr[p]
			baseL = s.sl[p]
		}
		s.sr[i] = baseR + s.r[i]*s.ctot[i]
		s.sl[i] = baseL + s.l[i]*s.ctot[i]
	}
	s.srslValid = true
}

func (s *State) checkEdit(i int, v float64) error {
	if i < 0 || i >= len(s.r) {
		return guard.Newf(guard.ErrTopology, "incr", "section index %d out of range [0, %d)", i, len(s.r))
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return guard.Newf(guard.ErrNumeric, "incr", "invalid element value %g at index %d", v, i)
	}
	return nil
}

// refreshSubtree recomputes sums[j] = sums[parent(j)] + elem[j]·Ctot(j)
// over the subtree of x in topological (parent-first DFS) order — the
// eager O(subtree) refresh for an R or L edit.
func (s *State) refreshSubtree(x int, elem, sums []float64) {
	s.pathBuf = append(s.pathBuf[:0], int32(x))
	for len(s.pathBuf) > 0 {
		j := s.pathBuf[len(s.pathBuf)-1]
		s.pathBuf = s.pathBuf[:len(s.pathBuf)-1]
		var base float64
		if p := s.parent[j]; p >= 0 {
			base = sums[p]
		}
		sums[j] = base + elem[j]*s.ctot[j]
		for ch := s.childHead[j]; ch >= 0; ch = s.childNext[ch] {
			s.pathBuf = append(s.pathBuf, ch)
		}
	}
	s.stats.SubtreeUpdates++
}

// SetR changes the series resistance of section i. Ctot and S_L are
// unaffected; S_R is refreshed eagerly over subtree(i) when the sums are
// currently valid (O(subtree)), and deferred to the next query otherwise.
func (s *State) SetR(i int, v float64) error {
	if err := s.checkEdit(i, v); err != nil {
		return err
	}
	if v == s.r[i] {
		return nil
	}
	s.r[i] = v
	s.stats.EditsR++
	if s.srslValid {
		s.refreshSubtree(i, s.r, s.sr)
	}
	return nil
}

// SetL changes the series inductance of section i; symmetric to SetR with
// S_L in place of S_R.
func (s *State) SetL(i int, v float64) error {
	if err := s.checkEdit(i, v); err != nil {
		return err
	}
	if v == s.l[i] {
		return nil
	}
	s.l[i] = v
	s.stats.EditsL++
	if s.srslValid {
		s.refreshSubtree(i, s.l, s.sl)
	}
	return nil
}

// SetC changes the node capacitance of section i. Ctot is refolded exactly
// along path(i) — each ancestor re-accumulates its children in the same
// descending-index order as the from-scratch bottom-up pass, so the
// maintained Ctot stays bit-identical — in O(depth·fanout). The S_R/S_L
// arrays are marked stale (a ΔC perturbs the sums of every node sharing a
// path prefix with i, by exactly R_ix·ΔC); they are refreshed lazily by
// the next SumsAt (O(depth)) or Sums (O(n)) query.
func (s *State) SetC(i int, v float64) error {
	if err := s.checkEdit(i, v); err != nil {
		return err
	}
	if v == s.c[i] {
		return nil
	}
	s.c[i] = v
	s.stats.EditsC++
	s.refoldPath(int32(i))
	s.srslValid = false
	return nil
}

// refoldPath recomputes Ctot(w) for every section on the input→w path,
// re-accumulating each node's children in the same descending-index order
// as the from-scratch bottom-up pass (own C last), so the maintained Ctot
// stays bit-identical. This is the O(depth·fanout) repair step shared by
// capacitance edits and the structural operations (structural.go), whose
// effect on the rest of the tree is exactly a Ctot change along one path.
// A negative w is a no-op (the input node holds no Ctot).
func (s *State) refoldPath(w int32) {
	for ; w >= 0; w = s.parent[w] {
		acc := 0.0
		for ch := s.childHead[w]; ch >= 0; ch = s.childNext[ch] {
			acc += s.ctot[ch]
		}
		acc += s.c[w]
		s.ctot[w] = acc
	}
}

// Apply replays one journal edit (see rlctree.Tree.EditsSince).
func (s *State) Apply(e rlctree.Edit) error {
	switch e.Elem {
	case rlctree.ElemR:
		return s.SetR(e.Index, e.New)
	case rlctree.ElemL:
		return s.SetL(e.Index, e.New)
	case rlctree.ElemC:
		return s.SetC(e.Index, e.New)
	}
	return guard.Newf(guard.ErrInternal, "incr", "unknown edit element %d", e.Elem)
}

// SumsAt returns S_R(i), S_L(i) and Ctot(i) for one node. When the sums
// are valid this is an array read; after a capacitance edit it walks the
// node's input→i path once — O(depth), the single-sink query cost the
// whole incremental design exists for — folding the recurrence in the
// exact from-scratch order, without revalidating the rest of the tree.
func (s *State) SumsAt(i int) (sr, sl, ctot float64, err error) {
	if i < 0 || i >= len(s.r) {
		return 0, 0, 0, guard.Newf(guard.ErrTopology, "incr", "section index %d out of range [0, %d)", i, len(s.r))
	}
	if s.srslValid {
		return s.sr[i], s.sl[i], s.ctot[i], nil
	}
	s.pathBuf = s.pathBuf[:0]
	for w := int32(i); w >= 0; w = s.parent[w] {
		s.pathBuf = append(s.pathBuf, w)
	}
	for k := len(s.pathBuf) - 1; k >= 0; k-- {
		w := s.pathBuf[k]
		sr = sr + s.r[w]*s.ctot[w]
		sl = sl + s.l[w]*s.ctot[w]
	}
	s.stats.PathQueries++
	return sr, sl, s.ctot[i], nil
}

// Sums returns the full summations, re-sweeping S_R/S_L once in O(n) if a
// capacitance edit left them stale. The returned slices are copies; the
// result is bit-identical to ElmoreSums on the equivalently edited tree.
func (s *State) Sums() rlctree.Sums {
	if !s.srslValid {
		s.sweepSums()
		s.stats.FullSweeps++
	}
	return rlctree.Sums{
		SR:   append([]float64(nil), s.sr...),
		SL:   append([]float64(nil), s.sl...),
		Ctot: append([]float64(nil), s.ctot...),
	}
}
