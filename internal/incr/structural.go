package incr

import (
	"eedtree/internal/guard"
	"eedtree/internal/rlctree"
)

// This file extends the kernel across structural edits. The observation is
// the same one that makes element edits cheap: the summations are path
// accumulations over Ctot, and a structural change — attach a subtree,
// detach one, split a section in place — perturbs Ctot on exactly one
// input→node path. So:
//
//   - attach folds the new subtree's Ctot bottom-up within the appended
//     index range (O(|subtree|)) and refolds Ctot along path(parent)
//     (O(depth)); the new nodes' S_R/S_L seed from the parent's path sums
//     through the ordinary lazy query path;
//   - detach un-folds symmetrically: drop the removed range, refold Ctot
//     along path(former parent);
//   - split recomputes the k subsection Ctots from the preserved child
//     fold and refolds the path above.
//
// The bit-identity contract carries over unchanged: no stored sum ever
// receives an additive delta. Every affected Ctot is recomputed through
// the same child-descending/own-C-last fold as the from-scratch pass, the
// index-order invariants of rlctree's structural ops guarantee the fold
// order at untouched nodes is undisturbed, and S_R/S_L are marked stale so
// queries re-derive them in from-scratch order. After ApplyRecord the
// state is bit-identical to New on the post-edit tree.

// ApplyRecord replays one typed journal record (rlctree.Tree.RecordsSince)
// — element edit or structural change — folding it into the live state in
// O(depth + |affected sections|). Records must be applied in journal
// order; an error means the record stream does not match the state (the
// caller should resynchronize with New).
func (s *State) ApplyRecord(rec rlctree.Record) error {
	switch rec.Kind {
	case rlctree.RecordValue:
		return s.Apply(rec.Edit)
	case rlctree.RecordAttach:
		return s.applyAttach(rec)
	case rlctree.RecordDetach:
		return s.applyDetach(rec)
	case rlctree.RecordSplit:
		return s.applySplit(rec)
	}
	return guard.Newf(guard.ErrInternal, "incr", "unknown record kind %d", rec.Kind)
}

// applyAttach appends the attached sections — rec describes Count sections
// at [Index, Index+Count) with parents inside the new range or at the
// attach point — computes their Ctot bottom-up in from-scratch order, and
// refolds Ctot along the attach parent's path.
func (s *State) applyAttach(rec rlctree.Record) error {
	start, n := rec.Index, rec.Count
	if start != len(s.r) || n < 1 {
		return guard.Newf(guard.ErrTopology, "incr",
			"attach record at %d (count %d) does not extend state of %d sections", start, n, len(s.r))
	}
	attachParent := int32(-1)
	for i := 0; i < n; i++ {
		var p int32
		var r, l, c float64
		if rec.Multi != nil {
			p, r, l, c = rec.Multi.Parents[i], rec.Multi.R[i], rec.Multi.L[i], rec.Multi.C[i]
		} else {
			p, r, l, c = rec.Parent, rec.R, rec.L, rec.C
		}
		if int(p) >= start+i || p < -1 {
			return guard.Newf(guard.ErrTopology, "incr", "attach record parent %d out of order", p)
		}
		if p < int32(start) {
			// A root of the attached subtree: all roots share the attach
			// parent (-1 = the input node).
			attachParent = p
		}
		idx := int32(start + i)
		s.parent = append(s.parent, p)
		s.r = append(s.r, r)
		s.l = append(s.l, l)
		s.c = append(s.c, c)
		s.ctot = append(s.ctot, 0)
		s.sr = append(s.sr, 0)
		s.sl = append(s.sl, 0)
		s.childHead = append(s.childHead, -1)
		s.childNext = append(s.childNext, -1)
		if p >= 0 {
			// Ascending push-to-head keeps every child list in descending
			// index order, new children ahead of older smaller-index ones —
			// exactly the list New would build for the post-attach tree.
			s.childNext[idx] = s.childHead[p]
			s.childHead[p] = idx
		}
	}
	// Ctot of the new range, in the exact from-scratch bottom-up order:
	// children (all inside the range) fold in descending index order, the
	// node's own C last.
	for j := start + n - 1; j >= start; j-- {
		s.ctot[j] += s.c[j]
		if p := s.parent[j]; p >= int32(start) {
			s.ctot[p] += s.ctot[j]
		}
	}
	// The attach parent's path gains the subtree's capacitance.
	s.refoldPath(attachParent)
	s.srslValid = false
	s.stats.Attaches++
	return nil
}

// applyDetach removes the recorded index set — a full subtree, so the
// survivors' parents all survive — compacting the state in relative order,
// and refolds Ctot along the former parent's path. A detach of a
// contiguous index suffix (the common case for optimizer undo) is a pure
// truncation.
func (s *State) applyDetach(rec rlctree.Record) error {
	if rec.Multi == nil || len(rec.Multi.Removed) == 0 {
		return guard.Newf(guard.ErrTopology, "incr", "detach record carries no removed set")
	}
	removed := rec.Multi.Removed
	n := len(s.r)
	root := int32(rec.Index)
	if int(root) >= n || int(removed[len(removed)-1]) >= n || len(removed) >= n {
		return guard.Newf(guard.ErrTopology, "incr", "detach record out of range for %d sections", n)
	}
	p := s.parent[root]

	if k := len(removed); int(removed[0])+k == n {
		// Suffix fast path: unlink the subtree root from its parent's child
		// list, then truncate every array. O(depth + fanout).
		if p >= 0 {
			if s.childHead[p] == root {
				s.childHead[p] = s.childNext[root]
			} else {
				for ch := s.childHead[p]; ch >= 0; ch = s.childNext[ch] {
					if s.childNext[ch] == root {
						s.childNext[ch] = s.childNext[root]
						break
					}
				}
			}
		}
		w := int(removed[0])
		s.parent = s.parent[:w]
		s.childHead = s.childHead[:w]
		s.childNext = s.childNext[:w]
		s.r, s.l, s.c = s.r[:w], s.l[:w], s.c[:w]
		s.ctot = s.ctot[:w]
		s.sr, s.sl = s.sr[:w], s.sl[:w]
	} else {
		// General case: compact in relative order. oldToNew doubles as the
		// removed marker (-1).
		oldToNew := make([]int32, n)
		ri := 0
		w := int32(0)
		for i := 0; i < n; i++ {
			if ri < len(removed) && removed[ri] == int32(i) {
				oldToNew[i] = -1
				ri++
				continue
			}
			oldToNew[i] = w
			w++
		}
		out := int32(0)
		var newP int32
		for i := 0; i < n; i++ {
			if oldToNew[i] < 0 {
				continue
			}
			if op := s.parent[i]; op >= 0 {
				// A survivor's parent survives (removal is subtree-closed).
				newP = oldToNew[op]
			} else {
				newP = -1
			}
			s.parent[out] = newP
			s.r[out], s.l[out], s.c[out] = s.r[i], s.l[i], s.c[i]
			s.ctot[out] = s.ctot[i]
			out++
		}
		s.parent = s.parent[:out]
		s.r, s.l, s.c = s.r[:out], s.l[:out], s.c[:out]
		s.ctot = s.ctot[:out]
		s.sr, s.sl = s.sr[:out], s.sl[:out]
		// Rebuild the adjacency lists for the compacted index space.
		s.childHead = s.childHead[:out]
		s.childNext = s.childNext[:out]
		for i := range s.childHead {
			s.childHead[i] = -1
			s.childNext[i] = -1
		}
		for i := int32(0); i < out; i++ {
			if pp := s.parent[i]; pp >= 0 {
				s.childNext[i] = s.childHead[pp]
				s.childHead[pp] = i
			}
		}
		if p >= 0 {
			p = oldToNew[p]
		}
	}
	// The former parent's path loses the subtree's capacitance.
	s.refoldPath(p)
	s.srslValid = false
	s.stats.Detaches++
	return nil
}

// applySplit replaces the section at rec.Index with Count equal
// subsections in place, the original keeping the last slot (and its
// children), later sections shifting up — mirroring
// rlctree.Tree.SplitSection index for index. The divided element values
// are recomputed here from the state's own arrays with the same division,
// so their bits match the tree's.
func (s *State) applySplit(rec rlctree.Record) error {
	x, k := rec.Index, rec.Count
	if x < 0 || x >= len(s.r) || k < 2 {
		return guard.Newf(guard.ErrTopology, "incr",
			"split record (%d into %d) out of range for %d sections", x, k, len(s.r))
	}
	m := int32(k - 1)
	kk := float64(k)
	rr, ll, cc := s.r[x]/kk, s.l[x]/kk, s.c[x]/kk

	// Remap parents across the shift: children of x follow it to the last
	// slot, everything above x moves up by m. x's own parent is < x and
	// unaffected.
	for i, p := range s.parent {
		switch {
		case int(p) == x:
			s.parent[i] = int32(x) + m
		case int(p) > x:
			s.parent[i] = p + m
		}
	}
	pOld := s.parent[x]

	growF := func(a []float64) []float64 {
		a = append(a, make([]float64, m)...)
		copy(a[x+int(m):], a[x:])
		return a
	}
	s.r, s.l, s.c = growF(s.r), growF(s.l), growF(s.c)
	s.ctot, s.sr, s.sl = growF(s.ctot), growF(s.sr), growF(s.sl)
	s.parent = append(s.parent, make([]int32, m)...)
	copy(s.parent[x+int(m):], s.parent[x:])
	for i := 0; i < k; i++ {
		s.r[x+i], s.l[x+i], s.c[x+i] = rr, ll, cc
		if i == 0 {
			s.parent[x] = pOld
		} else {
			s.parent[x+i] = int32(x + i - 1)
		}
	}

	// Rebuild adjacency for the shifted index space.
	n := len(s.r)
	s.childHead = s.childHead[:0]
	s.childNext = s.childNext[:0]
	for i := 0; i < n; i++ {
		s.childHead = append(s.childHead, -1)
		s.childNext = append(s.childNext, -1)
	}
	for i := 0; i < n; i++ {
		if p := s.parent[i]; p >= 0 {
			s.childNext[i] = s.childHead[p]
			s.childHead[p] = int32(i)
		}
	}

	// Ctot of the k subsections, bottom-up in from-scratch fold order: the
	// last slot folds the original section's (shifted, unchanged) children,
	// each upstream subsection folds its single child; own C last.
	last := x + int(m)
	acc := 0.0
	for ch := s.childHead[last]; ch >= 0; ch = s.childNext[ch] {
		acc += s.ctot[ch]
	}
	s.ctot[last] = acc + cc
	for j := last - 1; j >= x; j-- {
		s.ctot[j] = s.ctot[j+1] + cc
	}
	s.refoldPath(pOld)
	s.srslValid = false
	s.stats.Splits++
	return nil
}
