package incr

import (
	"math"
	"math/rand"
	"testing"

	"eedtree/internal/rlctree"
)

// bitEq compares floats for bit equality (distinguishes ±0, accepts equal
// NaN bit patterns — though the kernel never stores non-finite values).
func bitEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func requireSumsBitEqual(t *testing.T, got, want rlctree.Sums, context string) {
	t.Helper()
	if len(got.SR) != len(want.SR) {
		t.Fatalf("%s: length mismatch %d != %d", context, len(got.SR), len(want.SR))
	}
	for i := range want.SR {
		if !bitEq(got.SR[i], want.SR[i]) || !bitEq(got.SL[i], want.SL[i]) || !bitEq(got.Ctot[i], want.Ctot[i]) {
			t.Fatalf("%s: node %d: got SR=%x SL=%x Ctot=%x, want SR=%x SL=%x Ctot=%x",
				context, i,
				math.Float64bits(got.SR[i]), math.Float64bits(got.SL[i]), math.Float64bits(got.Ctot[i]),
				math.Float64bits(want.SR[i]), math.Float64bits(want.SL[i]), math.Float64bits(want.Ctot[i]))
		}
	}
}

func TestNewMatchesElmoreSums(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tree := rlctree.Random(rng, rlctree.RandomSpec{Sections: 1 + rng.Intn(64)})
		st, err := New(tree)
		if err != nil {
			t.Fatal(err)
		}
		requireSumsBitEqual(t, st.Sums(), tree.ElmoreSums(), "fresh state")
	}
}

func TestNewEmptyTreeFails(t *testing.T) {
	if _, err := New(rlctree.New()); err == nil {
		t.Fatal("empty tree must fail")
	}
}

func TestEditValidation(t *testing.T) {
	tree := rlctree.Random(rand.New(rand.NewSource(1)), rlctree.RandomSpec{Sections: 4})
	st, err := New(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := st.SetR(0, v); err == nil {
			t.Fatalf("SetR(0, %g) must fail", v)
		}
	}
	if err := st.SetC(99, 1); err == nil {
		t.Fatal("out-of-range index must fail")
	}
	if err := st.SetC(-1, 1); err == nil {
		t.Fatal("negative index must fail")
	}
	if _, _, _, err := st.SumsAt(99); err == nil {
		t.Fatal("out-of-range query must fail")
	}
	if err := st.Apply(rlctree.Edit{Index: 0, Elem: rlctree.Elem(9), New: 1}); err == nil {
		t.Fatal("unknown edit element must fail")
	}
}

// applyBoth applies one edit to both the live tree and the state.
func applyBoth(t *testing.T, tree *rlctree.Tree, st *State, idx int, elem rlctree.Elem, v float64) {
	t.Helper()
	s := tree.Sections()[idx]
	var terr, serr error
	switch elem {
	case rlctree.ElemR:
		terr, serr = s.SetR(v), st.SetR(idx, v)
	case rlctree.ElemL:
		terr, serr = s.SetL(v), st.SetL(idx, v)
	case rlctree.ElemC:
		terr, serr = s.SetC(v), st.SetC(idx, v)
	}
	if terr != nil || serr != nil {
		t.Fatalf("edit (%d, %v, %g): tree err %v, state err %v", idx, elem, v, terr, serr)
	}
}

// TestRandomEditSequenceBitEquality is the correctness contract of the
// incremental engine: across ≥1000 random SetR/SetL/SetC edits on random
// trees, the incrementally maintained sums are bit-identical to a
// from-scratch ElmoreSums of the equivalently edited tree — checked via
// single-sink SumsAt after every edit (exercising the lazy O(depth) path)
// and via the full Sums() refresh at random intervals (exercising the
// eager and re-sweep paths and the valid/stale transitions).
func TestRandomEditSequenceBitEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	totalEdits := 0
	for trial := 0; trial < 30; trial++ {
		spec := rlctree.RandomSpec{Sections: 1 + rng.Intn(96), ChainP: 0.5 + rng.Float64()*0.45}
		tree := rlctree.Random(rng, spec)
		st, err := New(tree)
		if err != nil {
			t.Fatal(err)
		}
		n := tree.Len()
		for e := 0; e < 50; e++ {
			idx := rng.Intn(n)
			elem := rlctree.Elem(rng.Intn(3))
			var v float64
			switch rng.Intn(5) {
			case 0:
				v = 0 // exercise zero values (ideal junctions, RC-only paths)
			default:
				v = rng.Float64() * 100
			}
			applyBoth(t, tree, st, idx, elem, v)
			totalEdits++

			want := tree.ElmoreSums()
			q := rng.Intn(n)
			sr, sl, ctot, err := st.SumsAt(q)
			if err != nil {
				t.Fatal(err)
			}
			if !bitEq(sr, want.SR[q]) || !bitEq(sl, want.SL[q]) || !bitEq(ctot, want.Ctot[q]) {
				t.Fatalf("trial %d edit %d: SumsAt(%d) = %x/%x/%x, want %x/%x/%x",
					trial, e, q,
					math.Float64bits(sr), math.Float64bits(sl), math.Float64bits(ctot),
					math.Float64bits(want.SR[q]), math.Float64bits(want.SL[q]), math.Float64bits(want.Ctot[q]))
			}
			if rng.Intn(7) == 0 {
				requireSumsBitEqual(t, st.Sums(), want, "full sums after edit")
			}
		}
		requireSumsBitEqual(t, st.Sums(), tree.ElmoreSums(), "end of trial")
	}
	if totalEdits < 1000 {
		t.Fatalf("property test covered only %d edits, want ≥ 1000", totalEdits)
	}
}

// TestJournalReplayMatchesDirectEdits: a state synchronized by replaying
// the tree's edit journal (the engine.Session path) is bit-identical to
// one that saw the edits directly.
func TestJournalReplayMatchesDirectEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tree := rlctree.Random(rng, rlctree.RandomSpec{Sections: 40})
	st, err := New(tree) // snapshot at generation g
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Gen()
	for e := 0; e < 200; e++ {
		s := tree.Sections()[rng.Intn(tree.Len())]
		v := rng.Float64() * 50
		var err error
		switch rng.Intn(3) {
		case 0:
			err = s.SetR(v)
		case 1:
			err = s.SetL(v)
		default:
			err = s.SetC(v)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	edits, status := tree.EditsSince(g)
	if status != rlctree.JournalOK {
		t.Fatalf("journal must cover the edit burst: %v", status)
	}
	for _, e := range edits {
		if err := st.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	requireSumsBitEqual(t, st.Sums(), tree.ElmoreSums(), "journal replay")
}

func TestStatsCounters(t *testing.T) {
	tree, err := rlctree.Line("w", 8, rlctree.SectionValues{R: 1, L: 1e-9, C: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetR(2, 5); err != nil { // valid sums → eager subtree refresh
		t.Fatal(err)
	}
	if got := st.Stats(); got.EditsR != 1 || got.SubtreeUpdates != 1 {
		t.Fatalf("after R edit: %+v", got)
	}
	if err := st.SetC(3, 5e-15); err != nil { // invalidates
		t.Fatal(err)
	}
	if _, _, _, err := st.SumsAt(7); err != nil { // lazy path query
		t.Fatal(err)
	}
	if got := st.Stats(); got.EditsC != 1 || got.PathQueries != 1 {
		t.Fatalf("after C edit + query: %+v", got)
	}
	st.Sums() // lazy full sweep
	if got := st.Stats(); got.FullSweeps != 1 {
		t.Fatalf("after full sums: %+v", got)
	}
	// No-op edits count nothing.
	before := st.Stats()
	if err := st.SetL(0, tree.Sections()[0].L()); err != nil {
		t.Fatal(err)
	}
	if st.Stats() != before {
		t.Fatal("no-op edit must not bump stats")
	}
}

// TestSumsReturnsCopies: mutating a returned Sums must not corrupt the
// state.
func TestSumsReturnsCopies(t *testing.T) {
	tree, err := rlctree.Line("w", 4, rlctree.SectionValues{R: 1, L: 1e-9, C: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(tree)
	if err != nil {
		t.Fatal(err)
	}
	s1 := st.Sums()
	s1.SR[0] = 12345
	s1.Ctot[0] = 54321
	s2 := st.Sums()
	if s2.SR[0] == 12345 || s2.Ctot[0] == 54321 {
		t.Fatal("Sums must return copies")
	}
}
