// Package faultinj is the deterministic fault-injection framework the
// resilience suite drives: named injection points compiled into the
// service layers (the HTTP handler spine, the engine registry, sessions
// and batches, guard.Run) that do nothing until a Plan is activated, then
// fire — panic, stall, evict, degrade — according to seed-driven,
// reproducible per-point schedules.
//
// Discipline mirrors internal/obs: when no plan is active the per-site
// cost is one atomic pointer load (Fire returns false immediately), so
// production binaries carry the points for free; `make fault-check` gates
// that claim with a twin benchmark the same way `make obs-check` gates
// the metrics layer.
//
// Determinism. A plan carries a seed; each rule keeps an atomic arrival
// counter, and the fire/skip decision for arrival n is a pure function of
// (seed, point, n) — a splitmix64 draw compared against the rule's
// probability. Two runs that deliver the same per-point arrival sequences
// therefore inject identical fault sequences, which is what lets the
// chaos harness replay a failing soak from its recorded seed.
//
// Activation is process-global (one service per process, like the obs
// registry): cmd/eedd arms a plan from -faults at startup, the test-only
// /v1/faults admin endpoint swaps plans at runtime, and tests call
// Activate/Deactivate directly. See Parse for the spec grammar.
package faultinj

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"eedtree/internal/obs"
)

// Point names one compiled-in injection site.
type Point string

// The injection points. Each constant documents where the site lives and
// what firing does there.
const (
	// SrvPanic panics inside an eedsrv analysis handler: net/http kills
	// the connection, so the client sees a mid-request drop with no
	// response — the crash-shaped fault.
	SrvPanic Point = "srv.panic"
	// SrvStall sleeps the rule's duration inside the handler while
	// holding a worker-pool slot — the slow-response / overload fault.
	SrvStall Point = "srv.stall"
	// SrvQueueTimeout makes the handler answer as if the request's
	// deadline fired while queued: 504, class "canceled", Retry-After set
	// (the pre-execution rejection clients may safely retry).
	SrvQueueTimeout Point = "srv.queue_timeout"
	// SrvConnDrop aborts the handler with http.ErrAbortHandler: the
	// connection closes cleanly mid-request without a stack trace — the
	// network-flake fault.
	SrvConnDrop Point = "srv.conn_drop"
	// RegEvict flushes every resident net from the engine registry on a
	// lookup — the eviction-storm fault; fingerprint holders get 404s and
	// must re-register.
	RegEvict Point = "reg.evict"
	// SessNumeric fails a session query with an injected numeric-classed
	// error — the degraded-kernel fault. The service must serve an honest
	// 422, never a wrong float.
	SessNumeric Point = "sess.numeric"
	// BatchCancel fails one engine.Batch task with an injected
	// canceled-classed error, exercising per-item isolation.
	BatchCancel Point = "batch.cancel"
	// GuardPanic panics inside guard.Run's protected region, exercising
	// panic isolation end to end (recovered to ErrInternal → 500).
	GuardPanic Point = "guard.panic"
)

// Points returns every known injection point, in stable order.
func Points() []Point {
	return []Point{SrvPanic, SrvStall, SrvQueueTimeout, SrvConnDrop,
		RegEvict, SessNumeric, BatchCancel, GuardPanic}
}

// Rule is the firing schedule of one point within a plan.
type Rule struct {
	Point Point
	P     float64       // fire probability per arrival, [0, 1]
	N     uint64        // max fires (0 = unlimited)
	After uint64        // arrivals skipped before the rule becomes live
	D     time.Duration // stall duration (SrvStall; ignored elsewhere)
}

// rule is a Rule plus its runtime state.
type rule struct {
	Rule
	hash    uint64 // fnv64a(point), folded into the decision draw
	calls   atomic.Uint64
	fired   atomic.Uint64
	counter *obs.Counter
}

// Plan is an activated (or activatable) set of rules sharing one seed.
// A Plan's rule set is immutable after Parse; only the counters move.
type Plan struct {
	Seed  uint64
	rules map[Point]*rule
	order []Point // spec order, for String and Stats
}

// active is the process-global armed plan; nil means disabled.
var active atomic.Pointer[Plan]

// On reports whether a plan is armed. Sites may gate on it, but Fire and
// Stall already fold the check into their first load.
func On() bool { return active.Load() != nil }

// Activate arms p process-wide (nil deactivates). The previous plan's
// counters stop moving but remain readable by holders of the pointer.
func Activate(p *Plan) { active.Store(p) }

// Deactivate disarms fault injection.
func Deactivate() { active.Store(nil) }

// Active returns the armed plan, or nil.
func Active() *Plan { return active.Load() }

// Fire reports whether pt fires at this arrival of the armed plan. With
// no plan armed, or no rule for pt, it is false at the cost of one atomic
// load (plus a map probe when armed).
func Fire(pt Point) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	return p.fire(pt)
}

// Stall is Fire for stall-shaped points: it additionally returns the
// rule's configured duration when the point fires.
func Stall(pt Point) (time.Duration, bool) {
	p := active.Load()
	if p == nil {
		return 0, false
	}
	r := p.rules[pt]
	if r == nil || !p.fire(pt) {
		return 0, false
	}
	return r.D, true
}

// fire implements the deterministic decision for one arrival.
func (p *Plan) fire(pt Point) bool {
	r := p.rules[pt]
	if r == nil {
		return false
	}
	n := r.calls.Add(1) // 1-based arrival number
	if n <= r.After {
		return false
	}
	if r.P < 1 {
		// The draw is a pure function of (seed, point, arrival): replaying
		// the same arrival sequence replays the same faults.
		x := splitmix64(p.Seed ^ r.hash ^ (n * 0x9e3779b97f4a7c15))
		if float64(x>>11)/(1<<53) >= r.P {
			return false
		}
	}
	if r.N > 0 {
		// Bounded rules stop exactly at N fires, so the fired counter (and
		// its metric) never overcounts.
		for {
			f := r.fired.Load()
			if f >= r.N {
				return false
			}
			if r.fired.CompareAndSwap(f, f+1) {
				break
			}
		}
	} else {
		r.fired.Add(1)
	}
	if obs.On() {
		r.counter.Inc()
	}
	return true
}

// Fired returns how many times pt has fired under the armed plan (0 when
// disarmed or unruled).
func Fired(pt Point) uint64 {
	p := active.Load()
	if p == nil {
		return 0
	}
	if r := p.rules[pt]; r != nil {
		return r.fired.Load()
	}
	return 0
}

// PointStats is one rule's configuration and live counters, the admin
// endpoint's view.
type PointStats struct {
	Rule
	Calls uint64 // arrivals observed
	Fired uint64 // faults injected
}

// Stats returns the plan's rules with their counters, in spec order.
func (p *Plan) Stats() []PointStats {
	out := make([]PointStats, 0, len(p.order))
	for _, pt := range p.order {
		r := p.rules[pt]
		out = append(out, PointStats{Rule: r.Rule, Calls: r.calls.Load(), Fired: r.fired.Load()})
	}
	return out
}

// Rules returns the plan's rule set in spec order (configuration only).
func (p *Plan) Rules() []Rule {
	out := make([]Rule, 0, len(p.order))
	for _, pt := range p.order {
		out = append(out, p.rules[pt].Rule)
	}
	return out
}

// String renders the plan in the canonical spec form: Parse(p.String())
// reproduces an equivalent plan.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, pt := range p.order {
		r := p.rules[pt]
		fmt.Fprintf(&b, ";%s:p=%g", pt, r.P)
		if r.N > 0 {
			fmt.Fprintf(&b, ",n=%d", r.N)
		}
		if r.After > 0 {
			fmt.Fprintf(&b, ",after=%d", r.After)
		}
		if r.D > 0 {
			fmt.Fprintf(&b, ",d=%s", r.D)
		}
	}
	return b.String()
}

// splitmix64 is the SplitMix64 mixer — a bijective avalanche over the
// arrival index, cheap enough for a hot-path decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64a hashes a point name (registration-time cost only).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
