package faultinj

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"eedtree/internal/obs"
)

// Spec grammar (the -faults flag and the /v1/faults admin body):
//
//	spec   := clause (';' clause)*
//	clause := "seed=" uint64
//	        | point [':' param (',' param)*]
//	param  := "p=" float      fire probability, [0,1]; default 1
//	        | "n=" uint       max fires (0 = unlimited); default 0
//	        | "after=" uint   arrivals skipped before the rule is live; default 0
//	        | "d=" duration   stall duration (srv.stall); default 50ms there
//
// Points are the names in Points(). Whitespace around tokens is ignored;
// a point without params fires on every arrival. Examples:
//
//	srv.stall:p=0.2,d=25ms
//	seed=7;srv.panic:p=0.02,n=5;reg.evict:p=0.01
//
// The canonical rendering is Plan.String: Parse∘String is the identity
// on canonical specs (the fuzz target pins that).

// DefaultStall is the stall duration used when a srv.stall rule gives no d=.
const DefaultStall = 50 * time.Millisecond

// Parse compiles a spec into an activatable Plan. An empty (or
// all-whitespace) spec is an error — deactivation is explicit
// (Deactivate / an empty admin body), not a magic spec value.
func Parse(spec string) (*Plan, error) {
	known := make(map[Point]bool, len(Points()))
	for _, pt := range Points() {
		known[pt] = true
	}
	p := &Plan{Seed: 1, rules: map[Point]*rule{}}
	clauses := 0
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		clauses++
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinj: bad seed %q", v)
			}
			p.Seed = seed
			continue
		}
		name, params, _ := strings.Cut(clause, ":")
		pt := Point(strings.TrimSpace(name))
		if !known[pt] {
			return nil, fmt.Errorf("faultinj: unknown point %q (want one of %v)", name, Points())
		}
		if p.rules[pt] != nil {
			return nil, fmt.Errorf("faultinj: point %q given twice", pt)
		}
		r := &rule{Rule: Rule{Point: pt, P: 1}, hash: fnv64a(string(pt))}
		if err := parseParams(r, params); err != nil {
			return nil, err
		}
		if pt == SrvStall && r.D == 0 {
			r.D = DefaultStall
		}
		r.counter = obs.Default().Counter(
			obs.Label("eed_faultinj_fired_total", "point", string(pt)),
			"Faults injected, by point.")
		p.rules[pt] = r
		p.order = append(p.order, pt)
	}
	if clauses == 0 {
		return nil, fmt.Errorf("faultinj: empty spec")
	}
	if len(p.order) == 0 {
		return nil, fmt.Errorf("faultinj: spec names no injection point")
	}
	return p, nil
}

func parseParams(r *rule, params string) error {
	for _, kv := range strings.Split(params, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("faultinj: %s: bad param %q (want key=value)", r.Point, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "p":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 || f != f {
				return fmt.Errorf("faultinj: %s: p=%q outside [0,1]", r.Point, val)
			}
			r.P = f
		case "n":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("faultinj: %s: bad n=%q", r.Point, val)
			}
			r.N = n
		case "after":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("faultinj: %s: bad after=%q", r.Point, val)
			}
			r.After = n
		case "d":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("faultinj: %s: bad d=%q (want a non-negative duration)", r.Point, val)
			}
			r.D = d
		default:
			return fmt.Errorf("faultinj: %s: unknown param %q (want p, n, after or d)", r.Point, key)
		}
	}
	return nil
}
