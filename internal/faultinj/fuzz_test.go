package faultinj

import "testing"

// FuzzParseFaultSpec throws hostile specs at the -faults / /v1/faults
// parser. Invariants: Parse never panics; an accepted spec has at least
// one rule, all probabilities in [0,1], non-negative durations; and the
// canonical rendering is a fixed point — Parse(p.String()).String() ==
// p.String(), so what the admin endpoint echoes back re-parses to the
// same plan.
func FuzzParseFaultSpec(f *testing.F) {
	for _, seed := range []string{
		"srv.stall:p=0.2,d=25ms",
		"seed=7;srv.panic:p=0.02,n=5;reg.evict:p=0.01",
		"sess.numeric",
		"seed=0;guard.panic:after=3",
		"batch.cancel:p=1,n=0",
		"srv.conn_drop : p=0.5 , n=2",
		"seed=18446744073709551615;srv.queue_timeout:p=0.001",
		";;srv.stall;;",
		"srv.stall:p=2", "nope", "seed=", "srv.stall:d=-1s",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return
		}
		rules := p.Rules()
		if len(rules) == 0 {
			t.Fatalf("accepted spec %q has no rules", spec)
		}
		for _, r := range rules {
			if r.P < 0 || r.P > 1 || r.P != r.P {
				t.Fatalf("spec %q: rule %s has p=%v", spec, r.Point, r.P)
			}
			if r.D < 0 {
				t.Fatalf("spec %q: rule %s has d=%v", spec, r.Point, r.D)
			}
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", s, spec, err)
		}
		if got := p2.String(); got != s {
			t.Fatalf("canonical form not a fixed point:\n in %q\nout %q", s, got)
		}
	})
}
