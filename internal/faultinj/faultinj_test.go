package faultinj

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// arm activates a parsed spec for the duration of the test. Tests in this
// package share the process-global plan, so none of them may run parallel.
func arm(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	Activate(p)
	t.Cleanup(Deactivate)
	return p
}

func TestDisabledNeverFires(t *testing.T) {
	Deactivate()
	if On() {
		t.Fatal("On() with no plan armed")
	}
	for _, pt := range Points() {
		if Fire(pt) {
			t.Fatalf("%s fired while disarmed", pt)
		}
	}
	if d, ok := Stall(SrvStall); ok || d != 0 {
		t.Fatal("Stall fired while disarmed")
	}
}

func TestAlwaysFireAndUnknownPointInert(t *testing.T) {
	arm(t, "srv.panic")
	for i := 0; i < 10; i++ {
		if !Fire(SrvPanic) {
			t.Fatalf("arrival %d: p=1 rule did not fire", i)
		}
	}
	// Points without a rule never fire under an armed plan.
	if Fire(RegEvict) {
		t.Fatal("unruled point fired")
	}
	if Fired(SrvPanic) != 10 {
		t.Fatalf("Fired = %d, want 10", Fired(SrvPanic))
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	arm(t, "seed=42;sess.numeric:p=0.3")
	fires := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if Fire(SessNumeric) {
			fires++
		}
	}
	if fires < n*25/100 || fires > n*35/100 {
		t.Fatalf("p=0.3 fired %d/%d times", fires, n)
	}
}

func TestDeterministicAcrossPlans(t *testing.T) {
	spec := "seed=7;srv.conn_drop:p=0.5"
	record := func() []bool {
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		Activate(p)
		defer Deactivate()
		out := make([]bool, 200)
		for i := range out {
			out[i] = Fire(SrvConnDrop)
		}
		return out
	}
	a, b := record(), record()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs between identical plans", i)
		}
	}
	// A different seed must give a different schedule.
	p2, _ := Parse("seed=8;srv.conn_drop:p=0.5")
	Activate(p2)
	defer Deactivate()
	same := true
	for i := range a {
		if Fire(SrvConnDrop) != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed change did not change the schedule")
	}
}

func TestAfterSkipsArrivals(t *testing.T) {
	arm(t, "batch.cancel:after=3")
	for i := 1; i <= 3; i++ {
		if Fire(BatchCancel) {
			t.Fatalf("arrival %d fired inside the after window", i)
		}
	}
	if !Fire(BatchCancel) {
		t.Fatal("arrival 4 should fire")
	}
}

func TestNBoundsTotalFires(t *testing.T) {
	arm(t, "guard.panic:n=2")
	fires := 0
	for i := 0; i < 50; i++ {
		if Fire(GuardPanic) {
			fires++
		}
	}
	if fires != 2 || Fired(GuardPanic) != 2 {
		t.Fatalf("fires = %d, Fired = %d, want 2", fires, Fired(GuardPanic))
	}
}

func TestStallReturnsDuration(t *testing.T) {
	arm(t, "srv.stall:p=1,d=17ms")
	d, ok := Stall(SrvStall)
	if !ok || d != 17*time.Millisecond {
		t.Fatalf("Stall = (%v, %v), want (17ms, true)", d, ok)
	}
}

func TestStallDefaultsDuration(t *testing.T) {
	arm(t, "srv.stall")
	if d, ok := Stall(SrvStall); !ok || d != DefaultStall {
		t.Fatalf("Stall = (%v, %v), want (%v, true)", d, ok, DefaultStall)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	p := arm(t, "seed=3;sess.numeric:p=0.5,n=5000")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				Fire(SessNumeric)
			}
		}()
	}
	wg.Wait()
	st := p.Stats()[0]
	if st.Calls != 40000 {
		t.Fatalf("calls = %d, want 40000", st.Calls)
	}
	if st.Fired > 5000 {
		t.Fatalf("fired %d > n=5000", st.Fired)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "   ", ";;",
		"nope.point", "srv.stall:p=2", "srv.stall:p=-0.1", "srv.stall:p=x",
		"srv.stall:d=-5ms", "srv.stall:d=zz", "srv.stall:q=1", "srv.stall:p",
		"seed=abc", "srv.panic;srv.panic", "seed=1", // seed alone names no point
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestStringRoundTrips(t *testing.T) {
	spec := "seed=9;srv.stall:p=0.25,d=20ms;srv.panic:p=0.02,n=5,after=10;reg.evict"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	p2, err := Parse(s)
	if err != nil {
		t.Fatalf("canonical form %q does not re-parse: %v", s, err)
	}
	if got := p2.String(); got != s {
		t.Fatalf("round trip drifted:\n first %s\nsecond %s", s, got)
	}
	rules := p2.Rules()
	if len(rules) != 3 || rules[0].D != 20*time.Millisecond || rules[1].N != 5 || rules[1].After != 10 || rules[2].P != 1 {
		t.Fatalf("rules after round trip = %+v", rules)
	}
	if !strings.Contains(s, "seed=9") {
		t.Fatalf("canonical form %q lost the seed", s)
	}
}
