package eedsrv

import (
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"eedtree/internal/obs"
)

// newFlightServer builds a server wired to its own private flight
// recorder, so assertions about "exactly one event" cannot be disturbed
// by other tests sharing the process-wide default recorder.
func newFlightServer(t *testing.T, opts Options) (*Server, *obs.FlightRecorder) {
	t.Helper()
	fr := obs.NewFlightRecorder(64, 8, time.Hour) // slow threshold out of reach
	opts.Flight = fr
	return newTestServer(t, opts), fr
}

// TestEveryResponsePathEmitsOneWideEvent is the single-emission matrix:
// whichever exit the analysis spine takes — success, guard-mapped error,
// panic-recovered 500, drain 503, injected queue-timeout 504 — exactly
// one wide event reaches the flight recorder, carrying the final status.
func TestEveryResponsePathEmitsOneWideEvent(t *testing.T) {
	cases := []struct {
		name     string
		prep     func(t *testing.T, s *Server)
		body     any
		status   int
		class    string
		captured bool
	}{
		{
			name:   "success",
			body:   DelayRequest{Tree: balanced7, Node: "s7"},
			status: 200,
		},
		{
			name:     "guard mapped parse error",
			body:     `{"tree": "not a tree`,
			status:   400,
			class:    "parse",
			captured: true,
		},
		{
			name:     "panic recovered 500",
			prep:     func(t *testing.T, s *Server) { armFaults(t, "srv.panic:p=1,n=1") },
			body:     DelayRequest{Tree: balanced7, Node: "s7"},
			status:   500,
			class:    "internal",
			captured: true,
		},
		{
			name:     "drain 503",
			prep:     func(t *testing.T, s *Server) { s.Drain() },
			body:     DelayRequest{Tree: balanced7, Node: "s7"},
			status:   503,
			class:    "draining",
			captured: true,
		},
		{
			name:     "queue timeout 504",
			prep:     func(t *testing.T, s *Server) { armFaults(t, "srv.queue_timeout:p=1,n=1") },
			body:     DelayRequest{Tree: balanced7, Node: "s7"},
			status:   504,
			class:    "canceled",
			captured: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, fr := newFlightServer(t, Options{})
			if tc.prep != nil {
				tc.prep(t, s)
			}
			code, _ := do(t, s, "POST", "/v1/delay", tc.body)
			if code != tc.status {
				t.Fatalf("status = %d, want %d", code, tc.status)
			}
			events := fr.Snapshot(obs.Filter{})
			if len(events) != 1 {
				t.Fatalf("flight recorder holds %d events, want exactly 1: %+v", len(events), events)
			}
			ev := events[0]
			if ev.Status != tc.status {
				t.Errorf("event status = %d, want %d", ev.Status, tc.status)
			}
			if ev.Class != tc.class {
				t.Errorf("event class = %q, want %q", ev.Class, tc.class)
			}
			if ev.Route != "/v1/delay" {
				t.Errorf("event route = %q, want /v1/delay", ev.Route)
			}
			if ev.RequestID == "" {
				t.Error("event has no request ID")
			}
			if ev.Captured != tc.captured {
				t.Errorf("event captured = %v, want %v", ev.Captured, tc.captured)
			}
			if caps := fr.Captures(); tc.captured && len(caps) != 1 {
				t.Errorf("capture buffer holds %d entries, want 1", len(caps))
			} else if !tc.captured && len(caps) != 0 {
				t.Errorf("capture buffer holds %d entries, want 0", len(caps))
			}
			if ev.TotalNS < 0 {
				t.Errorf("event total %d ns is negative", ev.TotalNS)
			}
		})
	}
}

// TestSuccessEventAnnotations pins what a healthy /v1/delay event must
// carry: resolved net, registry outcome, and the resolve+analyze stages.
func TestSuccessEventAnnotations(t *testing.T) {
	s, fr := newFlightServer(t, Options{})
	if code, raw := do(t, s, "POST", "/v1/delay", DelayRequest{Tree: balanced7, Node: "s7"}); code != 200 {
		t.Fatalf("delay: status %d: %s", code, raw)
	}
	ev := fr.Snapshot(obs.Filter{})[0]
	if ev.Net == "" {
		t.Error("event has no resolved net fingerprint")
	}
	if ev.Cache != "miss" {
		t.Errorf("first registration cache = %q, want miss", ev.Cache)
	}
	var names []string
	for _, sd := range ev.Stages() {
		names = append(names, sd.Name)
	}
	if got := strings.Join(names, ","); got != "analyze,resolve" && got != "resolve,analyze" {
		t.Errorf("stages = %q, want resolve and analyze", got)
	}

	// Same tree again: the registry hit must be visible on the new event.
	if code, _ := do(t, s, "POST", "/v1/delay", DelayRequest{Tree: balanced7, Node: "s7"}); code != 200 {
		t.Fatal("second delay failed")
	}
	if ev := fr.Snapshot(obs.Filter{})[0]; ev.Cache != "hit" {
		t.Errorf("re-registration cache = %q, want hit", ev.Cache)
	}
}

// TestRequestIDHonoredAndEchoed: a well-formed client ID (and attempt
// counter) flows into the event and back out on the response header; a
// malformed one is replaced by a server-generated ID.
func TestRequestIDHonoredAndEchoed(t *testing.T) {
	s, fr := newFlightServer(t, Options{})

	req := httptest.NewRequest("POST", "/v1/delay",
		strings.NewReader(`{"tree":"s1 - 25 1n 50f\n","node":"s1"}`))
	req.Header.Set(HeaderRequestID, "c-cafef00d")
	req.Header.Set(HeaderAttempt, "2")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderRequestID); got != "c-cafef00d" {
		t.Errorf("echoed request ID = %q, want the client's c-cafef00d", got)
	}
	ev := fr.Snapshot(obs.Filter{})[0]
	if ev.RequestID != "c-cafef00d" || ev.Attempt != 2 {
		t.Errorf("event correlation = (%q, %d), want (c-cafef00d, 2)", ev.RequestID, ev.Attempt)
	}

	req = httptest.NewRequest("POST", "/v1/delay",
		strings.NewReader(`{"tree":"s1 - 25 1n 50f\n","node":"s1"}`))
	req.Header.Set(HeaderRequestID, "spaces are not a token!")
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	got := rec.Header().Get(HeaderRequestID)
	if got == "" || strings.Contains(got, " ") {
		t.Errorf("malformed client ID not replaced: echoed %q", got)
	}
	if ev := fr.Snapshot(obs.Filter{})[0]; ev.RequestID != got {
		t.Errorf("event ID %q != echoed ID %q", ev.RequestID, got)
	}
}

// TestDebugEndpointsDisabledByDefault: without Options.DebugRequests the
// flight-recorder views must not exist — 404, same as any unknown path.
func TestDebugEndpointsDisabledByDefault(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, path := range []string{"/v1/debug/requests", "/v1/debug/slow"} {
		if code, _ := do(t, s, "GET", path, nil); code != 404 {
			t.Errorf("GET %s on a default server = %d, want 404", path, code)
		}
	}
}

// TestDebugRequestsFiltersAndSlowCaptures drives the live endpoints:
// filter combinators on /v1/debug/requests, and the span tree riding a
// failed request into /v1/debug/slow.
func TestDebugRequestsFiltersAndSlowCaptures(t *testing.T) {
	s, _ := newFlightServer(t, Options{DebugRequests: true})

	// Three requests: two healthy delays, one parse failure with a
	// client-chosen correlation ID.
	for i := 0; i < 2; i++ {
		if code, _ := do(t, s, "POST", "/v1/delay", DelayRequest{Tree: balanced7, Node: "s7"}); code != 200 {
			t.Fatal("seed delay failed")
		}
	}
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(`{"tree": "broken`))
	req.Header.Set(HeaderRequestID, "debug-test-bad")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("parse failure = %d, want 400", rec.Code)
	}

	query := func(q string) DebugRequestsResponse {
		t.Helper()
		code, raw := do(t, s, "GET", "/v1/debug/requests"+q, nil)
		if code != 200 {
			t.Fatalf("GET /v1/debug/requests%s = %d: %s", q, code, raw)
		}
		return decodeAs[DebugRequestsResponse](t, raw)
	}

	if all := query(""); len(all.Events) != 3 {
		t.Fatalf("unfiltered view holds %d events, want 3", len(all.Events))
	} else if all.Events[0].Route != "/v1/analyze" {
		t.Errorf("newest-first violated: first event route %q", all.Events[0].Route)
	}
	if got := query("?status=400"); len(got.Events) != 1 || got.Events[0].Class != "parse" {
		t.Errorf("status=400 filter returned %+v", got.Events)
	}
	if got := query("?route=/v1/delay"); len(got.Events) != 2 {
		t.Errorf("route filter returned %d events, want 2", len(got.Events))
	}
	if got := query("?id=debug-test-bad"); len(got.Events) != 1 || got.Events[0].Status != 400 {
		t.Errorf("id filter returned %+v", got.Events)
	}
	if got := query("?n=1"); len(got.Events) != 1 {
		t.Errorf("n=1 returned %d events", len(got.Events))
	}

	if code, _ := do(t, s, "GET", "/v1/debug/requests?status=many", nil); code != 400 {
		t.Errorf("malformed status filter = %d, want 400", code)
	}
	if code, _ := do(t, s, "POST", "/v1/debug/requests", nil); code != 405 {
		t.Errorf("POST /v1/debug/requests = %d, want 405", code)
	}

	// The failed request must sit in the capture buffer with its span
	// tree (tracing is armed because DebugRequests is on).
	code, raw := do(t, s, "GET", "/v1/debug/slow", nil)
	if code != 200 {
		t.Fatalf("GET /v1/debug/slow = %d: %s", code, raw)
	}
	slow := decodeAs[DebugSlowResponse](t, raw)
	if len(slow.Captures) != 1 {
		t.Fatalf("capture buffer holds %d entries, want 1", len(slow.Captures))
	}
	cap := slow.Captures[0]
	if cap.Event.RequestID != "debug-test-bad" || !cap.Event.Captured {
		t.Errorf("capture event = %+v, want the failed request marked captured", cap.Event)
	}
	if cap.Spans == nil {
		t.Fatal("capture carries no span tree despite DebugRequests tracing")
	}
	if cap.Spans.Name != "/v1/analyze" {
		t.Errorf("span tree root = %q, want /v1/analyze", cap.Spans.Name)
	}
}

// TestHealthzUptimeAndGoVersion pins the health probe's new fields
// against a frozen clock.
func TestHealthzUptimeAndGoVersion(t *testing.T) {
	s := newTestServer(t, Options{})
	base := s.start
	s.clock = func() time.Time { return base.Add(90 * time.Second) }
	code, raw := do(t, s, "GET", "/healthz", nil)
	if code != 200 {
		t.Fatalf("healthz: %d: %s", code, raw)
	}
	h := decodeAs[HealthResponse](t, raw)
	if h.UptimeSeconds != 90 {
		t.Errorf("uptime_seconds = %d, want 90", h.UptimeSeconds)
	}
	if h.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", h.GoVersion, runtime.Version())
	}
}
