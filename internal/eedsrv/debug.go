package eedsrv

import (
	"net/http"
	"strconv"

	"eedtree/internal/guard"
	"eedtree/internal/obs"
)

// handleDebugRequests serves GET /v1/debug/requests (mounted only with
// Options.DebugRequests): the flight recorder's retained wide events,
// newest first, filtered by the query parameters
//
//	status=<code>   exact HTTP status
//	class=<name>    exact guard class
//	route=<path>    exact route, e.g. /v1/delay
//	id=<request-id> exact correlation ID
//	n=<count>       at most n events
//
// Like /v1/faults it bypasses the analysis spine: inspecting a wedged or
// draining server is exactly when the debug view matters, so it must not
// queue behind the requests it is describing.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if obs.On() {
		endpointCounter("/v1/debug/requests").Inc()
	}
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeError(w, &apiErr{status: http.StatusMethodNotAllowed, class: "method",
			message: "/v1/debug/requests accepts GET"})
		return
	}
	q := r.URL.Query()
	f := obs.Filter{
		Class:     q.Get("class"),
		Route:     q.Get("route"),
		RequestID: q.Get("id"),
	}
	var err error
	if f.Status, err = debugInt(q.Get("status"), "status"); err != nil {
		writeError(w, err)
		return
	}
	if f.N, err = debugInt(q.Get("n"), "n"); err != nil {
		writeError(w, err)
		return
	}
	events := s.flight.Snapshot(f)
	if events == nil {
		events = []obs.WideEvent{}
	}
	writeJSON(w, http.StatusOK, DebugRequestsResponse{Events: events})
}

// handleDebugSlow serves GET /v1/debug/slow: the bounded capture buffer
// of slow and failed requests, each with its span tree when the request
// was traced, newest first.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if obs.On() {
		endpointCounter("/v1/debug/slow").Inc()
	}
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeError(w, &apiErr{status: http.StatusMethodNotAllowed, class: "method",
			message: "/v1/debug/slow accepts GET"})
		return
	}
	caps := s.flight.Captures()
	if caps == nil {
		caps = []obs.Capture{}
	}
	writeJSON(w, http.StatusOK, DebugSlowResponse{Captures: caps})
}

// debugInt parses one non-negative integer query parameter ("" = 0).
func debugInt(v, name string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, guard.Newf(guard.ErrParse, "eedsrv.debug", "query parameter %q must be a non-negative integer, got %q", name, v)
	}
	return n, nil
}
