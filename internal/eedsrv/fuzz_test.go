package eedsrv

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"eedtree/internal/engine"
	"eedtree/internal/guard"
)

// fuzzServer is shared across fuzz iterations — one resident registry,
// tight limits so hostile bodies hit every bound.
var fuzzServer = sync.OnceValue(func() *Server {
	return New(Options{
		Engine:          engine.New(engine.Options{Workers: 1, CacheEntries: 4}),
		RegistryEntries: 4,
		MaxBatchItems:   8,
		MaxEdits:        8,
		MaxBodyBytes:    1 << 16,
		Limits:          guard.Limits{MaxSections: 64},
	})
})

var fuzzEndpoints = []string{"/v1/nets", "/v1/delay", "/v1/analyze", "/v1/batch", "/v1/edit"}

// FuzzDecodeRequest throws arbitrary bodies at every analysis endpoint.
// The body path is exactly production's: decodeRequest (strict JSON) then
// the handler. The invariants under fuzz: no panic, the response is
// always a JSON document, the status is from the documented set, and no
// input reaches an internal-classed 500 — a hostile body must always be
// the *client's* error.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(0, `{"tree": "a - 1 1n 1f"}`)
	f.Add(1, `{"tree": "a - 1 1n 1f", "node": "a"}`)
	f.Add(1, `{"net": "`+strings.Repeat("ab", 32)+`", "node": "x"}`)
	f.Add(2, `{"tree": "a - 1 1n 1f\nb a 2 1n 1f"}`)
	f.Add(3, `{"workers": 2, "items": [{"tree": "a - 1 1n 1f", "node": "a"}, {"net": "zz"}]}`)
	f.Add(3, `{"workers": -1, "items": [{"tree": "a - 1 1n 1f"}]}`)
	f.Add(4, `{"tree": "a - 1 1n 1f", "edits": [{"node": "a", "elem": "C", "value": 2e-15}], "node": "a"}`)
	f.Add(4, `{"tree": "a - 1 1n 1f", "edits": [{"node": "a", "elem": "R", "value": -1}], "node": "a"}`)
	f.Add(4, `{"tree": "a - 1 1n 1f", "edits": [{"node": "a", "elem": "L", "value": 1e308}], "node": "a"}`)
	f.Add(0, `{"tree": 42}`)
	f.Add(1, `{"node":`)
	f.Add(1, `{"node": "x"} trailing`)
	f.Add(1, `{"unknown": true}`)
	f.Add(2, ``)
	f.Add(3, `[1,2,3]`)
	f.Add(4, `{"edits": [{"value": 1e999}]}`)

	okStatus := map[int]bool{200: true, 400: true, 404: true, 413: true, 422: true, 504: true}

	f.Fuzz(func(t *testing.T, which int, body string) {
		s := fuzzServer()
		path := fuzzEndpoints[((which%len(fuzzEndpoints))+len(fuzzEndpoints))%len(fuzzEndpoints)]
		req := httptest.NewRequest("POST", path, bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)

		if !okStatus[rec.Code] {
			t.Fatalf("%s: status %d outside the documented set\nbody: %q\nresponse: %s", path, rec.Code, body, rec.Body.Bytes())
		}
		var v any
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("%s: non-JSON response (status %d): %v\nbody: %q", path, rec.Code, err, body)
		}
		if rec.Code == 200 {
			return
		}
		if path == "/v1/batch" {
			// Batch failures are per-item at 200; a non-200 here is a
			// request-level error with the standard body, checked below.
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Class == "" || er.Error.Status != rec.Code {
			t.Fatalf("%s: malformed error body (status %d): %s", path, rec.Code, rec.Body.Bytes())
		}
		if er.Error.Class == "internal" {
			t.Fatalf("%s: hostile body reached an internal error: %s\nbody: %q", path, rec.Body.Bytes(), body)
		}
	})
}
