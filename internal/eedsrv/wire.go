// Package eedsrv is the delay-as-a-service layer: an HTTP/JSON server
// over the analysis engine that holds parsed trees and warm incremental
// sessions resident (engine.Registry), so a point query on a known net is
// an O(depth) memory-speed operation instead of a process start, a parse
// and two O(n) sweeps.
//
// API surface (all analysis endpoints are POST with a JSON body):
//
//	POST /v1/nets     register a tree, warm its session   → NetInfo
//	POST /v1/delay    one sink's characterization         → DelayResponse
//	POST /v1/analyze  whole-tree sweep                    → AnalyzeResponse
//	POST /v1/batch    many independent items, bounded     → BatchResponse
//	POST /v1/edit     apply element edits, requery O(depth) → EditResponse
//	GET  /v1/nets     resident nets + registry counters   → RegistryResponse
//	GET  /healthz     liveness / drain state
//	GET  /metrics     Prometheus text exposition (?format=json)
//
// Analysis requests name their net either inline (`"tree"`: the
// internal/rlctree text format — parsed, registered and kept warm) or by
// content fingerprint (`"net"`: the 64-hex-digit key returned by an
// earlier call). Edits change the content and therefore the key; the
// EditResponse carries the new fingerprint the client queries with from
// then on (content addressing stays honest — see engine.Registry.Rekey).
//
// Errors are JSON bodies {"error":{"class","status","message"}} with the
// status from guard.HTTPStatus: parse→400, topology/numeric→422,
// limit→413, canceled→504, internal→500, plus the daemon-level classes
// not_found→404, method→405 and draining→503. Served numbers are
// bit-identical to a direct core.AnalyzeTreeCtx of the same tree: float64
// values survive the JSON round trip exactly (Go marshals
// shortest-round-trip decimals), which the contract tests enforce.
package eedsrv

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"

	"eedtree/internal/core"
	"eedtree/internal/guard"
	"eedtree/internal/obs"
	"eedtree/internal/rlctree"
)

// NetInfo describes one resident net.
type NetInfo struct {
	Net      string `json:"net"`      // content fingerprint, 64 hex digits
	Sections int    `json:"sections"` // tree size
	Depth    int    `json:"depth"`    // levels from input to deepest sink
}

// RegisterRequest is the body of POST /v1/nets.
type RegisterRequest struct {
	Tree string `json:"tree"` // internal/rlctree text format
}

// DelayRequest is the body of POST /v1/delay: one sink of one net.
type DelayRequest struct {
	Tree string `json:"tree,omitempty"` // inline tree text (registered + warmed)
	Net  string `json:"net,omitempty"`  // fingerprint of a resident net
	Node string `json:"node"`           // sink section name
}

// DelayResponse is the answer to POST /v1/delay.
type DelayResponse struct {
	Net    string     `json:"net"`
	Result NodeResult `json:"result"`
}

// AnalyzeRequest is the body of POST /v1/analyze: every node of one net.
type AnalyzeRequest struct {
	Tree string `json:"tree,omitempty"`
	Net  string `json:"net,omitempty"`
}

// AnalyzeResponse is the answer to POST /v1/analyze, one NodeResult per
// section in tree (topological) order.
type AnalyzeResponse struct {
	Net   string       `json:"net"`
	Nodes []NodeResult `json:"nodes"`
}

// EditSpec is one element edit: set Elem ("R", "L" or "C") of section
// Node to Value (SI units, non-negative finite).
type EditSpec struct {
	Node  string  `json:"node"`
	Elem  string  `json:"elem"`
	Value float64 `json:"value"`
}

// EditRequest is the body of POST /v1/edit: apply Edits to a net in
// order, then answer the characterization at Node — the service form of
// the optimizer inner loop, O(depth) on a warm session.
type EditRequest struct {
	Tree  string     `json:"tree,omitempty"`
	Net   string     `json:"net,omitempty"`
	Edits []EditSpec `json:"edits"`
	Node  string     `json:"node"`
}

// EditResponse is the answer to POST /v1/edit. Net is the net's NEW
// fingerprint — the edits changed the content, so they changed the key.
type EditResponse struct {
	Net     string     `json:"net"`
	Applied int        `json:"applied"` // edits applied (== len(request.edits) on success)
	Result  NodeResult `json:"result"`
}

// BatchItem is one unit of POST /v1/batch: a net and, optionally, one
// sink (empty Node = whole-tree sweep).
type BatchItem struct {
	Tree string `json:"tree,omitempty"`
	Net  string `json:"net,omitempty"`
	Node string `json:"node,omitempty"`
}

// BatchRequest is the body of POST /v1/batch. Workers bounds the
// concurrently processed items (0 = one per CPU; negative is rejected by
// the engine with a limit-classed error on every item).
type BatchRequest struct {
	Workers int         `json:"workers,omitempty"`
	Items   []BatchItem `json:"items"`
}

// BatchResult is the outcome of one batch item: exactly one of Error,
// Result (single-sink item) or Nodes (whole-tree item) is set.
type BatchResult struct {
	Net    string       `json:"net,omitempty"`
	Error  *APIError    `json:"error,omitempty"`
	Result *NodeResult  `json:"result,omitempty"`
	Nodes  []NodeResult `json:"nodes,omitempty"`
}

// BatchResponse is the answer to POST /v1/batch. The HTTP status is 200
// even when items failed — per-item isolation mirrors the CLI batch
// contract; clients dispatch on the per-item Error.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	Failed  int           `json:"failed"`
}

// RegistryResponse is the answer to GET /v1/nets.
type RegistryResponse struct {
	Capacity  int       `json:"capacity"`
	Resident  int       `json:"resident"`
	Hits      uint64    `json:"hits"`
	Misses    uint64    `json:"misses"`
	Evictions uint64    `json:"evictions"`
	Nets      []NetInfo `json:"nets"`
}

// HealthResponse is the answer to GET /healthz: 200 while serving, 503
// while draining, always with this body — load balancers and harnesses
// distinguish "draining" (finite, let it finish) from "dead" (no answer
// at all) by the body, not just the status.
type HealthResponse struct {
	Status        string `json:"status"` // "ok" or "draining"
	Inflight      int    `json:"inflight"`
	ResidentNets  int    `json:"resident_nets"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	GoVersion     string `json:"go_version"`
}

// DebugRequestsResponse is the answer to GET /v1/debug/requests (mounted
// only with Options.DebugRequests): the flight recorder's retained wide
// events matching the query, newest first.
type DebugRequestsResponse struct {
	Events []obs.WideEvent `json:"events"`
}

// DebugSlowResponse is the answer to GET /v1/debug/slow: the bounded
// capture buffer of slow/error requests, each with its span tree when
// the request was traced. Newest first.
type DebugSlowResponse struct {
	Captures []obs.Capture `json:"captures"`
}

// FaultsRequest is the body of POST /v1/faults (test-only admin): arm the
// spec's fault plan, or disarm everything when Spec is empty.
type FaultsRequest struct {
	Spec string `json:"spec"`
}

// FaultPointStatus is one armed rule's configuration and live counters.
type FaultPointStatus struct {
	Point string  `json:"point"`
	P     float64 `json:"p"`
	N     uint64  `json:"n,omitempty"`
	After uint64  `json:"after,omitempty"`
	D     string  `json:"d,omitempty"` // stall duration, time.Duration form
	Calls uint64  `json:"calls"`       // arrivals observed
	Fired uint64  `json:"fired"`       // faults injected
}

// FaultsResponse is the answer to GET and POST /v1/faults.
type FaultsResponse struct {
	Enabled bool               `json:"enabled"`
	Spec    string             `json:"spec,omitempty"` // canonical form
	Points  []FaultPointStatus `json:"points,omitempty"`
}

// NodeResult is the wire form of core.NodeAnalysis. Seconds throughout.
// Zeta and OmegaN are omitted for RC-only (degraded) models, Settle when
// the settling time is undefined — JSON has no Inf/NaN, and omission is
// the honest encoding of "this quantity does not exist for this node".
type NodeResult struct {
	Node          string   `json:"node"`
	Zeta          *float64 `json:"zeta,omitempty"`
	OmegaN        *float64 `json:"omega_n,omitempty"`
	Delay50       float64  `json:"delay50"`
	Rise          float64  `json:"rise"`
	Overshoot     float64  `json:"overshoot"`
	Settle        *float64 `json:"settle,omitempty"`
	Elmore50      float64  `json:"elmore50"`
	ElmoreRise    float64  `json:"elmore_rise"`
	Degraded      bool     `json:"degraded,omitempty"`
	DegradedClass string   `json:"degraded_class,omitempty"`
}

// NodeResultOf converts one analysis to its wire form. It is exported for
// correctness oracles (the chaos harness) that must render a direct
// core.AnalyzeTreeCtx result exactly the way the server would, so served
// floats can be compared bit for bit.
func NodeResultOf(na core.NodeAnalysis) NodeResult {
	nr := NodeResult{
		Node:          na.Section.Name(),
		Delay50:       na.Delay50,
		Rise:          na.RiseTime,
		Overshoot:     na.Overshoot,
		Elmore50:      na.ElmoreDelay50,
		ElmoreRise:    na.ElmoreRiseTime,
		Degraded:      na.Degraded,
		DegradedClass: na.DegradedClass,
	}
	if !na.Model.RCOnly() {
		if z := na.Model.Zeta(); !math.IsInf(z, 0) && !math.IsNaN(z) {
			nr.Zeta = &z
		}
		if w := na.Model.OmegaN(); !math.IsInf(w, 0) && !math.IsNaN(w) {
			nr.OmegaN = &w
		}
	}
	if s := na.SettlingTime; !math.IsNaN(s) && !math.IsInf(s, 0) {
		nr.Settle = &s
	}
	return nr
}

// APIError is the wire form of a failure; Class is a guard class name or
// one of the daemon-level classes ("not_found", "method", "draining").
type APIError struct {
	Class   string `json:"class"`
	Status  int    `json:"status"`
	Message string `json:"message"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error APIError `json:"error"`
}

// apiErr is a daemon-level error with a pinned status and class, for
// conditions the guard taxonomy does not cover (unknown net, unknown
// node, wrong method, drain).
type apiErr struct {
	status     int
	class      string
	message    string
	retryAfter int // Retry-After seconds; 0 = no header (see writeError)
}

func (e *apiErr) Error() string { return e.message }

func errNotFound(format string, args ...any) *apiErr {
	return &apiErr{status: http.StatusNotFound, class: "not_found", message: fmt.Sprintf(format, args...)}
}

// toAPIError renders any error as its wire form: daemon-level errors keep
// their pinned status/class, guard-classed (and unclassified) errors go
// through guard.HTTPStatus/ClassName.
func toAPIError(err error) APIError {
	var ae *apiErr
	if errors.As(err, &ae) {
		return APIError{Class: ae.class, Status: ae.status, Message: ae.message}
	}
	class := guard.ClassName(err)
	if class == "error" {
		class = "internal"
	}
	return APIError{Class: class, Status: guard.HTTPStatus(err), Message: err.Error()}
}

// decodeRequest decodes one JSON request body into v with strict
// settings: unknown fields and trailing data are parse errors, an
// oversized body (http.MaxBytesReader upstream) is a limit error. This is
// the single entry point for every endpoint's body — and the fuzz
// target's, so hostile bodies exercise exactly the production path.
func decodeRequest(body io.Reader, v any) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return classifyDecodeError(err)
	}
	// A second value after the first is trailing garbage.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		if err == nil {
			err = errors.New("trailing data after JSON body")
		}
		return classifyDecodeError(err)
	}
	return nil
}

// classifyDecodeError maps a json/io decode failure onto the guard
// taxonomy: body-size overruns are limit-classed, everything else is a
// parse failure.
func classifyDecodeError(err error) error {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		return guard.New(guard.ErrLimit, "eedsrv.decode", err)
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return guard.Newf(guard.ErrParse, "eedsrv.decode", "truncated or empty JSON body")
	}
	return guard.New(guard.ErrParse, "eedsrv.decode", err)
}

// parseElem maps the wire element name onto the tree edit enum.
func parseElem(s string) (rlctree.Elem, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "R":
		return rlctree.ElemR, nil
	case "L":
		return rlctree.ElemL, nil
	case "C":
		return rlctree.ElemC, nil
	}
	return 0, guard.Newf(guard.ErrParse, "eedsrv.edit", "unknown element %q (want R, L or C)", s)
}
