package eedsrv

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"eedtree/internal/core"
	"eedtree/internal/engine"
	"eedtree/internal/guard"
	"eedtree/internal/rlctree"
)

var updateGolden = flag.Bool("update", false, "rewrite the contract goldens from live responses")

// contractFixture is one golden API exchange: the request is authored by
// hand, the expected response is recorded by `go test -update` and
// reviewed like any other diff. Fixtures run in filename order against
// one server, so stateful sequences (register → query by fingerprint →
// edit → stale key) are part of the contract.
type contractFixture struct {
	Comment string          `json:"comment,omitempty"`
	Method  string          `json:"method"`
	Path    string          `json:"path"`
	Body    json.RawMessage `json:"body,omitempty"`     // JSON request body
	RawBody string          `json:"raw_body,omitempty"` // malformed-body cases
	Status  int             `json:"status"`
	Want    json.RawMessage `json:"response"`
}

// newContractServer returns the fixed configuration every contract
// fixture runs against. Changing these values changes the goldens. The
// clock is pinned 42 seconds past boot so the healthz fixture's
// uptime_seconds is deterministic.
func newContractServer(t *testing.T) *Server {
	t.Helper()
	s := newTestServer(t, Options{
		Engine:          engine.New(engine.Options{Workers: 1, CacheEntries: 8}),
		RegistryEntries: 4,
		MaxEdits:        4,
		MaxBatchItems:   4,
		Limits:          guard.Limits{MaxSections: 8},
	})
	base := s.start
	s.clock = func() time.Time { return base.Add(42 * time.Second) }
	return s
}

// contractSubs computes the fingerprint placeholders fixture requests
// use: ${balanced7} is the shared net's key, ${edited} the key after the
// 05_edit fixture's edit (s4.C = 8e-14). Keeping fixtures symbolic means
// they survive fingerprint-algorithm changes; the recorded goldens hold
// the literal hex and are regenerated with -update. ${goversion} is the
// running toolchain's runtime.Version() — unlike the fingerprints it is
// substituted in recorded responses too (and reverse-substituted on
// -update), because CI may run a different Go release than the machine
// that recorded the golden.
func contractSubs(t *testing.T) *strings.Replacer {
	t.Helper()
	parse := func() *rlctree.Tree {
		tree, err := rlctree.Parse(strings.NewReader(balanced7))
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	base := parse()
	edited := parse()
	if err := edited.Section("s4").SetC(80e-15); err != nil {
		t.Fatal(err)
	}
	return strings.NewReplacer(
		"${balanced7}", fingerprintHex(base.Fingerprint()),
		"${edited}", fingerprintHex(edited.Fingerprint()),
		"${goversion}", runtime.Version(),
	)
}

func TestContractGoldens(t *testing.T) {
	dir := filepath.Join("testdata", "contract")
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no contract fixtures under %s (err=%v)", dir, err)
	}
	sort.Strings(names)

	s := newContractServer(t)
	subs := contractSubs(t)
	for _, name := range names {
		name := name
		t.Run(strings.TrimSuffix(filepath.Base(name), ".json"), func(t *testing.T) {
			raw, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			var fx contractFixture
			if err := json.Unmarshal(raw, &fx); err != nil {
				t.Fatalf("bad fixture: %v", err)
			}
			var body any
			switch {
			case fx.RawBody != "":
				body = fx.RawBody
			case len(fx.Body) > 0:
				body = json.RawMessage(subs.Replace(string(fx.Body)))
			}
			status, got := do(t, s, fx.Method, fx.Path, body)

			if *updateGolden {
				fx.Status = status
				// Reverse-substitute the toolchain version so the recorded
				// golden is portable across Go releases.
				recorded := strings.ReplaceAll(string(bytes.TrimSpace(got)), runtime.Version(), "${goversion}")
				fx.Want = json.RawMessage(recorded)
				out, err := json.MarshalIndent(fx, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(name, append(out, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}

			if status != fx.Status {
				t.Fatalf("status %d, want %d\nresponse: %s", status, fx.Status, got)
			}
			var gotV, wantV any
			if err := json.Unmarshal(got, &gotV); err != nil {
				t.Fatalf("response is not JSON: %v\n%s", err, got)
			}
			if err := json.Unmarshal([]byte(subs.Replace(string(fx.Want))), &wantV); err != nil {
				t.Fatalf("golden response is not JSON (rerun with -update?): %v", err)
			}
			// DeepEqual over decoded JSON compares float64s exactly — the
			// goldens pin served numbers to the bit.
			if !reflect.DeepEqual(gotV, wantV) {
				t.Fatalf("response drifted from golden %s\ngot:  %s\nwant: %s", name, got, fx.Want)
			}
		})
	}
}

// bitEq reports exact bit equality, treating NaN as equal to NaN.
func bitEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// checkNodeBits compares one served NodeResult against the directly
// computed analysis, field by field, to the bit.
func checkNodeBits(t *testing.T, nr NodeResult, na core.NodeAnalysis) {
	t.Helper()
	if nr.Node != na.Section.Name() {
		t.Fatalf("node %q, want %q", nr.Node, na.Section.Name())
	}
	fields := []struct {
		name     string
		got, ref float64
	}{
		{"delay50", nr.Delay50, na.Delay50},
		{"rise", nr.Rise, na.RiseTime},
		{"overshoot", nr.Overshoot, na.Overshoot},
		{"elmore50", nr.Elmore50, na.ElmoreDelay50},
		{"elmore_rise", nr.ElmoreRise, na.ElmoreRiseTime},
	}
	for _, f := range fields {
		if !bitEq(f.got, f.ref) {
			t.Fatalf("node %s: %s = %x, direct core bits %x (%.17g vs %.17g)",
				nr.Node, f.name, math.Float64bits(f.got), math.Float64bits(f.ref), f.got, f.ref)
		}
	}
	if settleDefined := !math.IsNaN(na.SettlingTime) && !math.IsInf(na.SettlingTime, 0); settleDefined != (nr.Settle != nil) {
		t.Fatalf("node %s: settle presence mismatch (direct %v, served %v)", nr.Node, na.SettlingTime, nr.Settle)
	} else if settleDefined && !bitEq(*nr.Settle, na.SettlingTime) {
		t.Fatalf("node %s: settle bits differ", nr.Node)
	}
	if !na.Model.RCOnly() {
		if nr.Zeta == nil || !bitEq(*nr.Zeta, na.Model.Zeta()) {
			t.Fatalf("node %s: zeta mismatch", nr.Node)
		}
		if nr.OmegaN == nil || !bitEq(*nr.OmegaN, na.Model.OmegaN()) {
			t.Fatalf("node %s: omega_n mismatch", nr.Node)
		}
	}
	if nr.Degraded != na.Degraded || nr.DegradedClass != na.DegradedClass {
		t.Fatalf("node %s: degraded flags drifted", nr.Node)
	}
}

// TestServedDelaysBitIdenticalToCore is the acceptance criterion made
// executable: numbers that crossed the HTTP/JSON boundary must decode to
// exactly the float64 bits a direct in-process core.AnalyzeTreeCtx
// produces — no rounding, no formatting loss, warm or cold.
func TestServedDelaysBitIdenticalToCore(t *testing.T) {
	trees := map[string]string{
		"balanced7": balanced7,
		"line64":    lineTree(64),
		// Zero inductance throughout: every node degrades to the RC model,
		// so the omitted-field convention is exercised too.
		"rc_fallback": "a - 100 0 1p\nb a 150 0 2p\n",
	}
	s := newTestServer(t, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for name, text := range trees {
		t.Run(name, func(t *testing.T) {
			tree, err := rlctree.Parse(strings.NewReader(text))
			if err != nil {
				t.Fatal(err)
			}
			direct, err := core.AnalyzeTreeCtx(context.Background(), tree)
			if err != nil {
				t.Fatal(err)
			}

			// Whole-tree sweep over real HTTP, twice: the first answer comes
			// off a cold session, the second off the warm resident — both
			// must carry identical bits.
			for pass, req := range []any{AnalyzeRequest{Tree: text}, AnalyzeRequest{Tree: text}} {
				body, _ := json.Marshal(req)
				hres, err := srv.Client().Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				var resp AnalyzeResponse
				err = json.NewDecoder(hres.Body).Decode(&resp)
				hres.Body.Close()
				if err != nil || hres.StatusCode != 200 {
					t.Fatalf("pass %d: status %d err %v", pass, hres.StatusCode, err)
				}
				if len(resp.Nodes) != len(direct) {
					t.Fatalf("pass %d: %d nodes, want %d", pass, len(resp.Nodes), len(direct))
				}
				for i, nr := range resp.Nodes {
					checkNodeBits(t, nr, direct[i])
				}
			}

			// Point queries per node through /v1/delay (the O(depth)
			// incremental path) must agree with the whole-tree sweep too.
			for _, na := range direct {
				body, _ := json.Marshal(DelayRequest{Tree: text, Node: na.Section.Name()})
				hres, err := srv.Client().Post(srv.URL+"/v1/delay", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				var resp DelayResponse
				err = json.NewDecoder(hres.Body).Decode(&resp)
				hres.Body.Close()
				if err != nil || hres.StatusCode != 200 {
					t.Fatalf("delay %s: status %d err %v", na.Section.Name(), hres.StatusCode, err)
				}
				checkNodeBits(t, resp.Result, na)
			}
		})
	}
}

// TestEditedNetBitIdenticalToCore drives edits through /v1/edit and
// checks the served result against a from-scratch analysis of an
// equivalently edited tree.
func TestEditedNetBitIdenticalToCore(t *testing.T) {
	s := newTestServer(t, Options{})
	info := register(t, s, balanced7)

	edits := []EditSpec{{Node: "s4", Elem: "C", Value: 90e-15}, {Node: "s1", Elem: "R", Value: 40}}
	code, raw := do(t, s, "POST", "/v1/edit", EditRequest{Net: info.Net, Edits: edits, Node: "s7"})
	if code != 200 {
		t.Fatalf("edit: status %d: %s", code, raw)
	}
	resp := decodeAs[EditResponse](t, raw)

	// The reference: parse the same text, apply the same edits, analyze
	// from scratch.
	tree, err := rlctree.Parse(strings.NewReader(balanced7))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Section("s4").SetC(90e-15); err != nil {
		t.Fatal(err)
	}
	if err := tree.Section("s1").SetR(40); err != nil {
		t.Fatal(err)
	}
	if got, want := resp.Net, fingerprintHex(tree.Fingerprint()); got != want {
		t.Fatalf("served fingerprint %s, reference %s", got, want)
	}
	direct, err := core.AnalyzeTreeCtx(context.Background(), tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, na := range direct {
		if na.Section.Name() == "s7" {
			checkNodeBits(t, resp.Result, na)
			return
		}
	}
	t.Fatal("reference analysis has no s7")
}

// lineTree renders an n-section line in the tree text format, the same
// shape as examples/nets/line64.tree.
func lineTree(n int) string {
	var b strings.Builder
	parent := "-"
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "w%d %s 25 1n 50f\n", i, parent)
		parent = fmt.Sprintf("w%d", i)
	}
	return b.String()
}
