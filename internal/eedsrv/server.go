package eedsrv

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"eedtree/internal/core"
	"eedtree/internal/engine"
	"eedtree/internal/faultinj"
	"eedtree/internal/guard"
	"eedtree/internal/obs"
	"eedtree/internal/rlctree"
)

// Defaults for the zero Options value.
const (
	DefaultMaxInflight    = 64
	DefaultMaxBodyBytes   = 8 << 20 // 8 MiB — a ~100k-section tree in text form
	DefaultMaxBatchItems  = 1024
	DefaultMaxEdits       = 1024
	DefaultRequestTimeout = 30 * time.Second
	DefaultRetryAfter     = 1 * time.Second
)

// Options configures a Server. The zero value is a usable production
// default.
type Options struct {
	// Engine executes whole-tree sweeps; nil means a fresh default engine
	// (GOMAXPROCS workers, DefaultCacheEntries result cache).
	Engine *engine.Engine
	// RegistryEntries bounds the resident-net pool (LRU-evicted).
	// 0 means engine.DefaultRegistryEntries.
	RegistryEntries int
	// MaxInflight bounds concurrently executing analysis requests; excess
	// requests queue, connection-aware (a caller that disconnects while
	// queued is dropped without running). 0 means DefaultMaxInflight.
	MaxInflight int
	// MaxBodyBytes bounds one request body. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxBatchItems bounds the items of one /v1/batch request.
	// 0 means DefaultMaxBatchItems.
	MaxBatchItems int
	// MaxEdits bounds the edits of one /v1/edit request. 0 means
	// DefaultMaxEdits.
	MaxEdits int
	// RequestTimeout bounds one request's wall time; past it the analysis
	// is canceled and the client gets 504. 0 means DefaultRequestTimeout;
	// negative means no limit.
	RequestTimeout time.Duration
	// Limits bounds the inline trees the server parses (zero fields get
	// guard defaults).
	Limits guard.Limits
	// RetryAfter is the Retry-After header value attached to responses
	// that reject a request before executing it (503 draining, 504
	// queue-timeout) — the server-suggested backoff for well-behaved
	// clients. 0 means DefaultRetryAfter; sub-second values round up to 1s
	// (the header speaks whole seconds).
	RetryAfter time.Duration
	// MountPprof exposes net/http/pprof under /debug/pprof/ on the
	// server's own mux. Off by default.
	MountPprof bool
	// EnableFaults mounts the test-only /v1/faults admin endpoint, which
	// arms and disarms internal/faultinj plans at runtime. Never enable it
	// on a production instance: it lets any caller panic handlers and
	// flush the registry.
	EnableFaults bool
	// Flight receives one wide event per analysis request. nil means the
	// process-wide obs.DefaultFlight() recorder.
	Flight *obs.FlightRecorder
	// DebugRequests mounts the live flight-recorder endpoints
	// (/v1/debug/requests, /v1/debug/slow) and arms per-request span
	// tracing so slow/error captures carry a span tree. Off by default:
	// without it the endpoints 404 and requests pay no tracing cost.
	DebugRequests bool
	// Logger, when set, gets one structured record per analysis request
	// (request ID, route, status, class, timings) plus drain lifecycle
	// events. nil disables request logging.
	Logger *slog.Logger
}

// Server is the delay-as-a-service HTTP handler set. It is safe for
// concurrent use; one Server is meant to serve a whole process.
type Server struct {
	opts      Options
	eng       *engine.Engine
	reg       *engine.Registry
	sem       chan struct{}
	mux       *http.ServeMux
	retrySecs int // Retry-After value for pre-execution rejections

	flight *obs.FlightRecorder
	logger *slog.Logger
	clock  func() time.Time // swappable for deterministic contract goldens
	start  time.Time
	bootID string // per-process nonce prefixing generated request IDs
	reqSeq atomic.Uint64

	draining atomic.Bool
	inflight atomic.Int64
	queued   atomic.Int64
}

// Correlation headers. The server echoes the request ID on every
// analysis response; eedclient sends both so server-side wide events
// line up with client retries.
const (
	HeaderRequestID = "X-Eed-Request-Id"
	HeaderAttempt   = "X-Eed-Attempt"
)

// maxRequestIDLen bounds a client-supplied request ID; longer (or
// non-token) values are replaced by a server-generated ID rather than
// rejected, so correlation is best-effort and never a failure mode.
const maxRequestIDLen = 64

// Server-level metrics. Per-endpoint series share one family via the
// single-label convention of internal/obs.
var (
	mInflight = obs.Default().Gauge("eed_server_inflight",
		"Analysis requests currently executing.")
	mQueued = obs.Default().Gauge("eed_server_queued",
		"Analysis requests waiting for a worker-pool slot.")
	mRejectedDrain = obs.Default().Counter("eed_server_rejected_draining_total",
		"Requests rejected because the server is draining.")
	// One unlabeled histogram for all endpoints: the exposition writer
	// supports single labels on counters/gauges only (histogram bucket
	// series would collide across label values).
	mLatency = obs.Default().Histogram("eed_server_request_latency_ns",
		"Analysis-request wall time (queue wait included), nanoseconds.",
		obs.DefaultLatencyBuckets)
)

func endpointCounter(endpoint string) *obs.Counter {
	return obs.Default().Counter(obs.Label("eed_server_requests_total", "endpoint", endpoint),
		"Requests served, by endpoint.")
}

func endpointErrors(class string) *obs.Counter {
	return obs.Default().Counter(obs.Label("eed_server_errors_total", "class", class),
		"Request failures, by error class.")
}

// New returns a Server with its routes mounted.
func New(opts Options) *Server {
	if opts.Engine == nil {
		opts.Engine = engine.New(engine.Options{})
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.MaxBatchItems <= 0 {
		opts.MaxBatchItems = DefaultMaxBatchItems
	}
	if opts.MaxEdits <= 0 {
		opts.MaxEdits = DefaultMaxEdits
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = DefaultRetryAfter
	}
	opts.Limits = opts.Limits.WithDefaults()
	if opts.Flight == nil {
		opts.Flight = obs.DefaultFlight()
	}
	s := &Server{
		opts:      opts,
		eng:       opts.Engine,
		reg:       engine.NewRegistry(opts.Engine, opts.RegistryEntries),
		sem:       make(chan struct{}, opts.MaxInflight),
		mux:       http.NewServeMux(),
		retrySecs: int((opts.RetryAfter + time.Second - 1) / time.Second),
		flight:    opts.Flight,
		logger:    opts.Logger,
		clock:     time.Now,
		bootID:    newBootID(),
	}
	s.start = s.clock()
	s.mux.HandleFunc("/v1/nets", s.handleNets)
	s.mux.HandleFunc("/v1/delay", s.analysis("/v1/delay", s.handleDelay))
	s.mux.HandleFunc("/v1/analyze", s.analysis("/v1/analyze", s.handleAnalyze))
	s.mux.HandleFunc("/v1/batch", s.analysis("/v1/batch", s.handleBatch))
	s.mux.HandleFunc("/v1/edit", s.analysis("/v1/edit", s.handleEdit))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/metrics", obs.Default().Handler())
	if opts.EnableFaults {
		s.mux.HandleFunc("/v1/faults", s.handleFaults)
	}
	if opts.DebugRequests {
		s.mux.HandleFunc("/v1/debug/requests", s.handleDebugRequests)
		s.mux.HandleFunc("/v1/debug/slow", s.handleDebugSlow)
	}
	if opts.MountPprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the resident-net pool (tests, ops introspection).
func (s *Server) Registry() *engine.Registry { return s.reg }

// Drain flips the server into drain mode: /healthz answers 503 (so load
// balancers stop routing here) and new analysis requests are rejected
// with a draining error, while requests already executing run to
// completion — pair it with http.Server.Shutdown, which waits for them.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Inflight returns the number of analysis requests currently executing.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError renders err as the JSON error body with its mapped status.
// A daemon-level error carrying a Retry-After hint (drain, queue timeout
// — rejections issued before the request executed) gets the header, so
// well-behaved clients back off instead of hammering; its presence is
// also the client's proof the request never ran, which is what makes
// retrying a non-idempotent edit safe.
func writeError(w http.ResponseWriter, err error) {
	var de *apiErr
	if errors.As(err, &de) && de.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(de.retryAfter))
	}
	ae := toAPIError(err)
	if ew, ok := w.(*eventWriter); ok {
		ew.ev.SetClass(ae.Class)
		ew.ev.SetErr(err)
	}
	if obs.On() {
		endpointErrors(ae.Class).Inc()
	}
	writeJSON(w, ae.Status, ErrorResponse{Error: ae})
}

// eventWriter pairs the response writer with the request's wide event:
// the first WriteHeader (or implicit 200) lands in the event, and
// writeError annotates the guard class through it, so the middleware's
// single deferred Record sees the final status whichever path wrote it.
type eventWriter struct {
	http.ResponseWriter
	ev    *obs.WideEvent
	wrote bool
}

func (w *eventWriter) WriteHeader(status int) {
	if !w.wrote {
		w.wrote = true
		w.ev.SetStatus(status)
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *eventWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		w.ev.SetStatus(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// newBootID returns the per-process nonce that prefixes generated
// request IDs, so IDs from two daemon generations never collide in logs.
func newBootID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "eed"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID bounds what the server honors from clients: a short
// token of [A-Za-z0-9._-]. Anything else gets a generated ID instead.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// requestID returns the correlation ID for r — the client's, when it
// sent a well-formed one, else a fresh server-generated ID — plus the
// client's 1-based retry attempt (0 when absent).
func (s *Server) requestID(r *http.Request) (string, int) {
	id := r.Header.Get(HeaderRequestID)
	if !validRequestID(id) {
		id = fmt.Sprintf("%s-%06d", s.bootID, s.reqSeq.Add(1))
	}
	attempt, err := strconv.Atoi(r.Header.Get(HeaderAttempt))
	if err != nil || attempt < 0 {
		attempt = 0
	}
	return id, attempt
}

// logRequest emits the request's structured log line: info for
// successes, warn for client-classed failures, error for 5xx.
func (s *Server) logRequest(ev *obs.WideEvent) {
	if s.logger == nil {
		return
	}
	lvl := slog.LevelInfo
	switch {
	case ev.Status >= 500:
		lvl = slog.LevelError
	case ev.Status >= 400:
		lvl = slog.LevelWarn
	}
	attrs := []slog.Attr{
		slog.String("request_id", ev.RequestID),
		slog.String("route", ev.Route),
		slog.Int("status", ev.Status),
		slog.Int64("total_ns", ev.TotalNS),
		slog.Int64("queue_ns", ev.QueueNS),
	}
	if ev.Attempt > 0 {
		attrs = append(attrs, slog.Int("attempt", ev.Attempt))
	}
	if ev.Net != "" {
		attrs = append(attrs, slog.String("net", ev.Net))
	}
	if ev.Cache != "" {
		attrs = append(attrs, slog.String("cache", ev.Cache))
	}
	if ev.Class != "" {
		attrs = append(attrs, slog.String("class", ev.Class))
	}
	if ev.Degraded != "" {
		attrs = append(attrs, slog.String("degraded", ev.Degraded))
	}
	if ev.Err != "" {
		attrs = append(attrs, slog.String("err", ev.Err))
	}
	s.logger.LogAttrs(context.Background(), lvl, "request", attrs...)
}

// analysis wraps an analysis handler with the service spine: POST-only,
// drain rejection, the connection-aware worker-pool bound, the request
// timeout, body-size cap, panic recovery, per-endpoint metrics, and the
// flight recorder's single wide event per request. The semaphore is the
// "connection-aware worker pool": at most MaxInflight requests execute,
// excess requests wait in line holding no resources, and a queued client
// that gives up (closed connection, canceled context) leaves the queue
// without ever running.
//
// Every exit path — success, guard-mapped error, panic-recovered 500,
// drain 503, queue-timeout 504, even a connection abort — funnels
// through the one deferred Record below, so each request emits exactly
// one wide event, correlated by X-Eed-Request-Id with the client's
// retries.
func (s *Server) analysis(endpoint string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		track := obs.On()
		t0 := s.clock()
		if track {
			endpointCounter(endpoint).Inc()
		}
		rid, attempt := s.requestID(r)
		w.Header().Set(HeaderRequestID, rid)
		ev := obs.WideEvent{StartNS: t0.UnixNano(), RequestID: rid, Attempt: attempt, Route: endpoint}
		var tr *obs.Trace
		if s.opts.DebugRequests {
			// Span tracing is armed only with the debug endpoints: the
			// capture buffer serves the tree, and dormant requests skip
			// the per-request Trace allocation entirely.
			tr = obs.NewTrace(endpoint)
			tr.Root().SetLabel(rid)
		}
		ew := &eventWriter{ResponseWriter: w, ev: &ev}
		defer func() {
			p := recover()
			if p != nil && p != http.ErrAbortHandler {
				// Handler panic: answer 500 on the still-open connection
				// (unless the handler already wrote headers) instead of
				// tearing it down, and record it like any internal error.
				if ew.wrote {
					ev.SetClass("internal")
					ev.Err = fmt.Sprintf("handler panic after response started: %v", p)
				} else {
					writeError(ew, &apiErr{status: http.StatusInternalServerError, class: "internal",
						message: fmt.Sprintf("handler panic: %v", p)})
				}
			}
			if p == http.ErrAbortHandler {
				// Deliberate connection abort (srv.conn_drop): the event
				// records it, then the panic continues so net/http still
				// severs the transport.
				ev.SetClass("aborted")
				ev.Err = "connection aborted (http.ErrAbortHandler)"
			}
			ev.TotalNS = int64(s.clock().Sub(t0))
			if tr != nil {
				tr.Finish()
			}
			s.flight.Record(&ev, tr)
			s.logRequest(&ev)
			if p == http.ErrAbortHandler {
				panic(p)
			}
		}()
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			writeError(ew, &apiErr{status: http.StatusMethodNotAllowed, class: "method",
				message: endpoint + " accepts POST only"})
			return
		}
		if s.draining.Load() {
			if track {
				mRejectedDrain.Inc()
			}
			writeError(ew, &apiErr{status: http.StatusServiceUnavailable, class: "draining",
				message:    "server is draining; retry against another instance",
				retryAfter: s.retrySecs})
			return
		}
		ctx := r.Context()
		if s.opts.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
			defer cancel()
		}
		s.queued.Add(1)
		if track {
			mQueued.Inc()
		}
		qt0 := s.clock()
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
			ev.QueueNS = int64(s.clock().Sub(qt0))
			if track {
				mQueued.Dec()
			}
		case <-ctx.Done():
			s.queued.Add(-1)
			ev.QueueNS = int64(s.clock().Sub(qt0))
			if track {
				mQueued.Dec()
			}
			// The deadline fired while the request was still queued — it
			// never executed, so the 504 carries Retry-After (edit-safe).
			writeError(ew, &apiErr{status: http.StatusGatewayTimeout, class: "canceled",
				message:    "request deadline expired while queued for a worker slot: " + context.Cause(ctx).Error(),
				retryAfter: s.retrySecs})
			return
		}
		s.inflight.Add(1)
		if track {
			mInflight.Inc()
		}
		defer func() {
			<-s.sem
			s.inflight.Add(-1)
			if track {
				mInflight.Dec()
				mLatency.ObserveSince(t0)
			}
		}()
		// Fault-injection points, armed only under an active faultinj plan
		// (one atomic load each otherwise). They run after the slot
		// acquisition so a stall occupies a worker slot exactly the way a
		// slow analysis would.
		if faultinj.On() {
			if faultinj.Fire(faultinj.SrvPanic) {
				// Recovered by the middleware's deferred recover above:
				// the client gets a 500, the flight recorder one event.
				panic("faultinj: injected handler panic (srv.panic)")
			}
			if faultinj.Fire(faultinj.SrvConnDrop) {
				panic(http.ErrAbortHandler)
			}
			if faultinj.Fire(faultinj.SrvQueueTimeout) {
				writeError(ew, &apiErr{status: http.StatusGatewayTimeout, class: "canceled",
					message:    "injected queue timeout (srv.queue_timeout)",
					retryAfter: s.retrySecs})
				return
			}
			if d, ok := faultinj.Stall(faultinj.SrvStall); ok {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					writeError(ew, guard.New(guard.ErrCanceled, "eedsrv", context.Cause(ctx)))
					return
				}
			}
		}
		ctx = obs.WithEvent(ctx, &ev)
		if tr != nil {
			ctx = obs.WithTrace(ctx, tr)
		}
		r.Body = http.MaxBytesReader(ew, r.Body, s.opts.MaxBodyBytes)
		h(ctx, ew, r)
	}
}

// resolveNet materializes the net a request names: an inline tree is
// parsed under the server's limits and registered (warm for the next
// call), a fingerprint is looked up among the resident nets. Exactly one
// of the two must be given. The request's wide event (carried by ctx, if
// any) is annotated with the resolved fingerprint, the registry hit/miss
// outcome, and the parse/resolve stage timing.
func (s *Server) resolveNet(ctx context.Context, treeText, netHex string) (*engine.Resident, error) {
	ev := obs.EventFrom(ctx)
	sp, _ := obs.StartSpan(ctx, "resolve")
	rt0 := time.Now()
	defer func() { ev.AddStage("resolve", time.Since(rt0)) }()
	switch {
	case treeText != "" && netHex != "":
		sp.EndWith("parse")
		return nil, guard.Newf(guard.ErrParse, "eedsrv", `request names both "tree" and "net"; give exactly one`)
	case treeText != "":
		tree, err := rlctree.ParseLimits(strings.NewReader(treeText), s.opts.Limits)
		if err != nil {
			sp.EndWith("parse")
			return nil, err
		}
		res, hit, err := s.reg.PutInfo(tree)
		if err != nil {
			sp.EndWith(guard.ClassName(err))
			return nil, err
		}
		ev.SetNet(fingerprintHex(tree.Fingerprint()))
		if hit {
			ev.SetCache("hit")
			sp.EndWith("hit")
		} else {
			ev.SetCache("miss")
			sp.EndWith("miss")
		}
		return res, nil
	case netHex != "":
		fp, err := parseFingerprint(netHex)
		if err != nil {
			sp.EndWith("parse")
			return nil, err
		}
		ev.SetNet(netHex)
		res, ok := s.reg.Lookup(fp)
		if !ok {
			ev.SetCache("miss")
			sp.EndWith("miss")
			return nil, errNotFound("net %s is not resident (never registered, evicted, or re-keyed by edits)", netHex)
		}
		ev.SetCache("hit")
		sp.EndWith("hit")
		return res, nil
	}
	sp.EndWith("parse")
	return nil, guard.Newf(guard.ErrParse, "eedsrv", `request names no net: give "tree" (inline text) or "net" (fingerprint)`)
}

// parseFingerprint decodes the 64-hex-digit wire form of a fingerprint.
func parseFingerprint(s string) (rlctree.Fingerprint, error) {
	var fp rlctree.Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(fp) {
		return fp, guard.Newf(guard.ErrParse, "eedsrv", "malformed net fingerprint %q (want %d hex digits)", s, 2*len(fp))
	}
	copy(fp[:], b)
	return fp, nil
}

// fingerprintHex is the wire form of a fingerprint.
func fingerprintHex(fp rlctree.Fingerprint) string { return hex.EncodeToString(fp[:]) }

// annotateDegraded records a degraded analysis result on the request's
// wide event (first degradation wins — one reason is enough evidence).
func annotateDegraded(ctx context.Context, na core.NodeAnalysis) {
	if !na.Degraded {
		return
	}
	if ev := obs.EventFrom(ctx); ev != nil && ev.Degraded == "" {
		ev.SetDegraded(na.DegradedClass)
	}
}

// netInfo snapshots a resident's descriptive fields under its lock.
func netInfo(res *engine.Resident) NetInfo {
	var info NetInfo
	res.Do(func(_ *engine.Session, tr *rlctree.Tree) error {
		info = NetInfo{Net: fingerprintHex(tr.Fingerprint()), Sections: tr.Len(), Depth: tr.Depth()}
		return nil
	})
	return info
}

// handleNets serves POST /v1/nets (register) and GET /v1/nets (list).
func (s *Server) handleNets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.analysis("/v1/nets", s.handleRegister)(w, r)
	case http.MethodGet:
		if obs.On() {
			endpointCounter("/v1/nets").Inc()
		}
		st := s.reg.Stats()
		resp := RegistryResponse{
			Capacity:  st.Capacity,
			Resident:  st.Resident,
			Hits:      st.Hits,
			Misses:    st.Misses,
			Evictions: st.Evictions,
			Nets:      []NetInfo{},
		}
		for _, res := range s.reg.Nets() {
			resp.Nets = append(resp.Nets, netInfo(res))
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, &apiErr{status: http.StatusMethodNotAllowed, class: "method",
			message: "/v1/nets accepts GET and POST"})
	}
}

func (s *Server) handleRegister(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeRequest(r.Body, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Tree == "" {
		writeError(w, guard.Newf(guard.ErrParse, "eedsrv", `"tree" is required`))
		return
	}
	res, err := s.resolveNet(ctx, req.Tree, "")
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, netInfo(res))
}

func (s *Server) handleDelay(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req DelayRequest
	if err := decodeRequest(r.Body, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Node == "" {
		writeError(w, guard.Newf(guard.ErrParse, "eedsrv", `"node" is required`))
		return
	}
	res, err := s.resolveNet(ctx, req.Tree, req.Net)
	if err != nil {
		writeError(w, err)
		return
	}
	var resp DelayResponse
	err = res.Do(func(sess *engine.Session, tr *rlctree.Tree) error {
		sink := tr.Section(req.Node)
		if sink == nil {
			return errNotFound("net has no node %q", req.Node)
		}
		sp, _ := obs.StartSpan(ctx, "analyze")
		at0 := time.Now()
		na, err := sess.AnalyzeAt(sink)
		obs.EventFrom(ctx).AddStage("analyze", time.Since(at0))
		if err != nil {
			sp.EndWith(guard.ClassName(err))
			return err
		}
		sp.End()
		annotateDegraded(ctx, na)
		resp = DelayResponse{Net: fingerprintHex(tr.Fingerprint()), Result: NodeResultOf(na)}
		return nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnalyze(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decodeRequest(r.Body, &req); err != nil {
		writeError(w, err)
		return
	}
	res, err := s.resolveNet(ctx, req.Tree, req.Net)
	if err != nil {
		writeError(w, err)
		return
	}
	var resp AnalyzeResponse
	err = res.Do(func(sess *engine.Session, tr *rlctree.Tree) error {
		sp, _ := obs.StartSpan(ctx, "analyze")
		sp.SetSections(tr.Len())
		at0 := time.Now()
		analyses, err := sess.Analyze(ctx)
		obs.EventFrom(ctx).AddStage("analyze", time.Since(at0))
		if err != nil {
			sp.EndWith(guard.ClassName(err))
			return err
		}
		sp.End()
		resp = AnalyzeResponse{Net: fingerprintHex(tr.Fingerprint()), Nodes: make([]NodeResult, 0, len(analyses))}
		for _, na := range analyses {
			annotateDegraded(ctx, na)
			resp.Nodes = append(resp.Nodes, NodeResultOf(na))
		}
		return nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEdit(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req EditRequest
	if err := decodeRequest(r.Body, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Node == "" {
		writeError(w, guard.Newf(guard.ErrParse, "eedsrv", `"node" is required`))
		return
	}
	if len(req.Edits) > s.opts.MaxEdits {
		writeError(w, guard.Newf(guard.ErrLimit, "eedsrv", "%d edits exceed the per-request limit %d", len(req.Edits), s.opts.MaxEdits))
		return
	}
	// Pre-validate the whole batch: element names and values are checked
	// before anything is applied, so a malformed request mutates nothing.
	elems := make([]rlctree.Elem, len(req.Edits))
	for i, e := range req.Edits {
		elem, err := parseElem(e.Elem)
		if err != nil {
			writeError(w, err)
			return
		}
		elems[i] = elem
		if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) || e.Value < 0 {
			writeError(w, guard.Newf(guard.ErrTopology, "eedsrv", "edit %d: invalid %s = %g (must be non-negative finite)", i, elem, e.Value))
			return
		}
	}
	res, err := s.resolveNet(ctx, req.Tree, req.Net)
	if err != nil {
		writeError(w, err)
		return
	}
	var resp EditResponse
	err = res.Do(func(sess *engine.Session, tr *rlctree.Tree) error {
		// Whatever happens below, the registry key must track the content:
		// EditAndAnalyze applies edits in order and keeps the earlier ones
		// on a mid-batch failure.
		defer func() {
			resp.Net = fingerprintHex(s.reg.Rekey(res))
			obs.EventFrom(ctx).SetNet(resp.Net)
		}()
		edits := make([]engine.SectionEdit, len(req.Edits))
		for i, e := range req.Edits {
			sec := tr.Section(e.Node)
			if sec == nil {
				return errNotFound("net has no node %q (edit %d)", e.Node, i)
			}
			edits[i] = engine.SectionEdit{Section: sec, Elem: elems[i], Value: e.Value}
		}
		sink := tr.Section(req.Node)
		if sink == nil {
			return errNotFound("net has no node %q", req.Node)
		}
		sp, _ := obs.StartSpan(ctx, "edit")
		sp.SetSections(len(edits))
		et0 := time.Now()
		na, err := sess.EditAndAnalyze(ctx, edits, sink)
		obs.EventFrom(ctx).AddStage("edit", time.Since(et0))
		if err != nil {
			sp.EndWith(guard.ClassName(err))
			return err
		}
		sp.End()
		annotateDegraded(ctx, na)
		resp.Applied = len(edits)
		resp.Result = NodeResultOf(na)
		return nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeRequest(r.Body, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, guard.Newf(guard.ErrParse, "eedsrv", `"items" must be non-empty`))
		return
	}
	if len(req.Items) > s.opts.MaxBatchItems {
		writeError(w, guard.Newf(guard.ErrLimit, "eedsrv", "%d items exceed the per-request limit %d", len(req.Items), s.opts.MaxBatchItems))
		return
	}
	results := make([]BatchResult, len(req.Items))
	// Items run concurrently: detach the request's wide event so per-item
	// annotations cannot race on it. The batch stage below still times
	// the fan-out as a whole.
	bt0 := time.Now()
	bctx := obs.DetachEvent(ctx)
	errs := engine.Batch(bctx, len(req.Items), req.Workers, func(ctx context.Context, i int) error {
		item := req.Items[i]
		res, err := s.resolveNet(ctx, item.Tree, item.Net)
		if err != nil {
			return err
		}
		return res.Do(func(sess *engine.Session, tr *rlctree.Tree) error {
			results[i].Net = fingerprintHex(tr.Fingerprint())
			if item.Node == "" {
				analyses, err := sess.Analyze(ctx)
				if err != nil {
					return err
				}
				nodes := make([]NodeResult, 0, len(analyses))
				for _, na := range analyses {
					nodes = append(nodes, NodeResultOf(na))
				}
				results[i].Nodes = nodes
				return nil
			}
			sink := tr.Section(item.Node)
			if sink == nil {
				return errNotFound("net has no node %q", item.Node)
			}
			na, err := sess.AnalyzeAt(sink)
			if err != nil {
				return err
			}
			nr := NodeResultOf(na)
			results[i].Result = &nr
			return nil
		})
	})
	ev := obs.EventFrom(ctx)
	ev.AddStage("batch", time.Since(bt0))
	resp := BatchResponse{Results: results}
	for i, err := range errs {
		if err != nil {
			ae := toAPIError(err)
			results[i] = BatchResult{Error: &ae}
			resp.Failed++
		}
	}
	if resp.Failed > 0 {
		ev.SetClass("partial")
		ev.SetErr(fmt.Errorf("%d of %d batch items failed", resp.Failed, len(req.Items)))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, &apiErr{status: http.StatusMethodNotAllowed, class: "method",
			message: "/healthz accepts GET and HEAD"})
		return
	}
	resp := HealthResponse{Status: "ok", Inflight: s.Inflight(),
		ResidentNets:  s.reg.Stats().Resident,
		UptimeSeconds: int64(s.clock().Sub(s.start) / time.Second),
		GoVersion:     runtime.Version()}
	status := http.StatusOK
	if s.draining.Load() {
		// Draining keeps the JSON body: a load balancer (and the chaos
		// harness) can tell a draining instance from a dead one.
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
