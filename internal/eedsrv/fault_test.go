package eedsrv

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"eedtree/internal/faultinj"
)

// armFaults activates a plan for the test's duration. The plan is
// process-global, so fault tests must not run in parallel.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	p, err := faultinj.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	faultinj.Activate(p)
	t.Cleanup(faultinj.Deactivate)
}

// doH is do() plus the response headers, for Retry-After assertions.
func doH(t *testing.T, s *Server, method, path string, body any) (int, []byte, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if body == nil {
		raw = nil
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes(), rec.Result().Header
}

// Satellite: every pre-execution rejection must carry Retry-After, the
// client's proof that the request never ran and is safe to retry even
// when non-idempotent.
func TestRetryAfterOnPreExecutionRejections(t *testing.T) {
	t.Run("drain503", func(t *testing.T) {
		s := newTestServer(t, Options{RetryAfter: 3 * time.Second})
		info := register(t, s, balanced7)
		s.Drain()
		code, _, hdr := doH(t, s, "POST", "/v1/delay", DelayRequest{Net: info.Net, Node: "s1"})
		if code != 503 {
			t.Fatalf("status %d, want 503", code)
		}
		if got := hdr.Get("Retry-After"); got != "3" {
			t.Fatalf("Retry-After = %q, want \"3\"", got)
		}
	})
	t.Run("queued504", func(t *testing.T) {
		s := newTestServer(t, Options{MaxInflight: 1, RequestTimeout: 20 * time.Millisecond})
		register(t, s, balanced7)
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		code, _, hdr := doH(t, s, "POST", "/v1/delay", DelayRequest{Tree: balanced7, Node: "s1"})
		if code != 504 {
			t.Fatalf("status %d, want 504", code)
		}
		// No RetryAfter option set: the default (1s) applies.
		if got := hdr.Get("Retry-After"); got != "1" {
			t.Fatalf("Retry-After = %q, want \"1\"", got)
		}
	})
	t.Run("injectedQueueTimeout504", func(t *testing.T) {
		s := newTestServer(t, Options{})
		armFaults(t, "srv.queue_timeout:p=1,n=1")
		code, raw, hdr := doH(t, s, "POST", "/v1/delay", DelayRequest{Tree: balanced7, Node: "s1"})
		if code != 504 {
			t.Fatalf("status %d, want 504: %s", code, raw)
		}
		if er := decodeAs[ErrorResponse](t, raw); er.Error.Class != "canceled" {
			t.Fatalf("class = %q, want canceled", er.Error.Class)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatal("injected queue timeout lost its Retry-After header")
		}
	})
}

// A deadline that fires mid-execution (here: during an injected stall,
// i.e. after the request started running) must NOT carry Retry-After —
// the client cannot know whether the work took effect.
func TestMidExecutionCancelHasNoRetryAfter(t *testing.T) {
	s := newTestServer(t, Options{RequestTimeout: 25 * time.Millisecond})
	armFaults(t, "srv.stall:p=1,n=1,d=2s")
	code, raw, hdr := doH(t, s, "POST", "/v1/delay", DelayRequest{Tree: balanced7, Node: "s1"})
	if code != 504 {
		t.Fatalf("status %d, want 504: %s", code, raw)
	}
	if er := decodeAs[ErrorResponse](t, raw); er.Error.Class != "canceled" {
		t.Fatalf("class = %q, want canceled", er.Error.Class)
	}
	if got := hdr.Get("Retry-After"); got != "" {
		t.Fatalf("mid-execution 504 must not advertise Retry-After, got %q", got)
	}
}

// Satellite: drain must reject new work immediately while requests
// already holding a worker slot run to completion with correct results.
func TestDrainWhileInflightCompletes(t *testing.T) {
	s := newTestServer(t, Options{MaxInflight: 4})
	info := register(t, s, balanced7)
	// Ground truth before any fault plan is armed.
	code, raw0 := do(t, s, "POST", "/v1/delay", DelayRequest{Net: info.Net, Node: "s7"})
	if code != 200 {
		t.Fatalf("baseline delay: %d: %s", code, raw0)
	}

	// Every subsequent analysis request stalls 300ms inside its slot.
	armFaults(t, "srv.stall:p=1,d=300ms")
	var (
		wg       sync.WaitGroup
		slowCode int
		slowRaw  []byte
	)
	started := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		slowCode, slowRaw = do(t, s, "POST", "/v1/delay", DelayRequest{Net: info.Net, Node: "s7"})
	}()
	<-started
	// Let the slow request clear the drain check and enter its stall.
	for i := 0; i < 200 && s.Inflight() == 0; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	if s.Inflight() == 0 {
		t.Fatal("slow request never reached its worker slot")
	}
	s.Drain()
	code, _, hdr := doH(t, s, "POST", "/v1/delay", DelayRequest{Net: info.Net, Node: "s7"})
	if code != 503 || hdr.Get("Retry-After") == "" {
		t.Fatalf("new work during drain: %d (Retry-After %q), want 503 with header", code, hdr.Get("Retry-After"))
	}
	wg.Wait()
	if slowCode != 200 {
		t.Fatalf("in-flight request during drain: %d: %s", slowCode, slowRaw)
	}
	// NodeResult carries pointer fields, so compare the serialized bytes.
	if !bytes.Equal(slowRaw, raw0) {
		t.Fatalf("in-flight result drifted under drain:\n got %s\nwant %s", slowRaw, raw0)
	}
}

// Satellite: /healthz reports a JSON body with live inflight and
// resident-net gauges.
func TestHealthzReportsResidentNets(t *testing.T) {
	s := newTestServer(t, Options{})
	code, raw := do(t, s, "GET", "/healthz", nil)
	if code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	h := decodeAs[HealthResponse](t, raw)
	if h.Status != "ok" || h.Inflight != 0 || h.ResidentNets != 0 {
		t.Fatalf("empty server health = %+v", h)
	}
	register(t, s, balanced7)
	register(t, s, "a - 1 1n 1f\n")
	_, raw = do(t, s, "GET", "/healthz", nil)
	if h := decodeAs[HealthResponse](t, raw); h.ResidentNets != 2 {
		t.Fatalf("health after two registers = %+v, want resident_nets=2", h)
	}
}

func TestFaultsEndpointHiddenByDefault(t *testing.T) {
	s := newTestServer(t, Options{})
	if code, _ := do(t, s, "GET", "/v1/faults", nil); code != 404 {
		t.Fatalf("/v1/faults without EnableFaults: %d, want 404", code)
	}
}

func TestFaultsEndpointArmInspectDisarm(t *testing.T) {
	s := newTestServer(t, Options{EnableFaults: true})
	t.Cleanup(faultinj.Deactivate)
	register(t, s, balanced7)

	code, raw := do(t, s, "GET", "/v1/faults", nil)
	if code != 200 {
		t.Fatalf("GET: %d", code)
	}
	if fr := decodeAs[FaultsResponse](t, raw); fr.Enabled {
		t.Fatalf("faults enabled before arming: %+v", fr)
	}

	spec := "seed=9;srv.stall:p=1,n=2,d=1ms;sess.numeric:p=0"
	code, raw = do(t, s, "POST", "/v1/faults", FaultsRequest{Spec: spec})
	if code != 200 {
		t.Fatalf("POST arm: %d: %s", code, raw)
	}
	fr := decodeAs[FaultsResponse](t, raw)
	if !fr.Enabled || len(fr.Points) != 2 {
		t.Fatalf("armed view = %+v", fr)
	}
	if !strings.Contains(fr.Spec, "seed=9") || !strings.Contains(fr.Spec, "srv.stall") {
		t.Fatalf("canonical spec = %q", fr.Spec)
	}
	// The plan is live: a request trips the stall and the counters move.
	if code, raw := do(t, s, "POST", "/v1/delay", DelayRequest{Tree: balanced7, Node: "s1"}); code != 200 {
		t.Fatalf("delay under 1ms stall: %d: %s", code, raw)
	}
	_, raw = do(t, s, "GET", "/v1/faults", nil)
	fr = decodeAs[FaultsResponse](t, raw)
	var stallFired uint64
	for _, p := range fr.Points {
		if p.Point == "srv.stall" {
			stallFired = p.Fired
			if p.D != "1ms" {
				t.Fatalf("stall duration on the wire = %q", p.D)
			}
		}
	}
	if stallFired != 1 {
		t.Fatalf("srv.stall fired %d times, want 1", stallFired)
	}

	code, raw = do(t, s, "POST", "/v1/faults", FaultsRequest{Spec: ""})
	if code != 200 {
		t.Fatalf("POST disarm: %d", code)
	}
	if fr := decodeAs[FaultsResponse](t, raw); fr.Enabled {
		t.Fatalf("still enabled after disarm: %+v", fr)
	}
	if faultinj.On() {
		t.Fatal("global plan still active after disarm")
	}
}

func TestFaultsEndpointRejectsBadSpecAndMethod(t *testing.T) {
	s := newTestServer(t, Options{EnableFaults: true})
	t.Cleanup(faultinj.Deactivate)
	code, raw := do(t, s, "POST", "/v1/faults", FaultsRequest{Spec: "srv.stall:p=7"})
	if code != 400 {
		t.Fatalf("bad spec: %d: %s", code, raw)
	}
	if er := decodeAs[ErrorResponse](t, raw); er.Error.Class != "parse" {
		t.Fatalf("bad-spec class = %q, want parse", er.Error.Class)
	}
	if faultinj.On() {
		t.Fatal("rejected spec must not arm anything")
	}
	if code, _ := do(t, s, "DELETE", "/v1/faults", nil); code != 405 {
		t.Fatalf("DELETE: %d, want 405", code)
	}
}

// Satellite: the faults endpoint keeps working on a draining server so a
// chaos harness can always clear its plan.
func TestFaultsEndpointSurvivesDrain(t *testing.T) {
	s := newTestServer(t, Options{EnableFaults: true})
	t.Cleanup(faultinj.Deactivate)
	s.Drain()
	code, _ := do(t, s, "POST", "/v1/faults", FaultsRequest{Spec: "srv.stall:p=1"})
	if code != 200 {
		t.Fatalf("arming on a draining server: %d, want 200", code)
	}
	if code, _ := do(t, s, "POST", "/v1/faults", FaultsRequest{Spec: ""}); code != 200 {
		t.Fatalf("disarming on a draining server: %d, want 200", code)
	}
}

// srv.panic is recovered by the analysis middleware into a JSON 500 on
// the still-open connection; srv.conn_drop (http.ErrAbortHandler) still
// severs the transport. The server survives both and keeps serving.
// Needs a real listener: net/http's per-connection abort handling is
// half the contract under test.
func TestInjectedPanicAndConnDropOverRealServer(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Config.ErrorLog = log.New(io.Discard, "", 0) // silence the panic stacks
	ts.Start()
	defer ts.Close()

	post := func() (*http.Response, error) {
		body, _ := json.Marshal(DelayRequest{Tree: balanced7, Node: "s1"})
		return http.Post(ts.URL+"/v1/delay", "application/json", bytes.NewReader(body))
	}
	armFaults(t, "srv.panic:p=1,n=1;srv.conn_drop:p=1,n=1")
	// First request trips srv.panic: recovered into a 500 with the
	// internal class, connection intact.
	resp, err := post()
	if err != nil {
		t.Fatalf("panic request: want a recovered 500, got transport error %v", err)
	}
	var errResp ErrorResponse
	decErr := json.NewDecoder(resp.Body).Decode(&errResp)
	resp.Body.Close()
	if resp.StatusCode != 500 || decErr != nil || errResp.Error.Class != "internal" {
		t.Fatalf("panic request: status %d class %q (decode err %v), want 500/internal",
			resp.StatusCode, errResp.Error.Class, decErr)
	}
	// Second request trips srv.conn_drop: the transport is severed.
	if resp, err := post(); err == nil {
		resp.Body.Close()
		t.Fatalf("conn_drop request: got status %d, want a transport error", resp.StatusCode)
	}
	// Both single-shot budgets are spent: the server answers normally.
	resp, err = post()
	if err != nil {
		t.Fatalf("post-fault request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-fault status %d", resp.StatusCode)
	}
	if fired := faultinj.Fired(faultinj.SrvPanic); fired != 1 {
		t.Fatalf("srv.panic fired %d times, want 1", fired)
	}
	if fired := faultinj.Fired(faultinj.SrvConnDrop); fired != 1 {
		t.Fatalf("srv.conn_drop fired %d times, want 1", fired)
	}
}
