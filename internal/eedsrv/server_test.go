package eedsrv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"eedtree/internal/engine"
	"eedtree/internal/guard"
)

// balanced7 is the paper's Fig-5 balanced binary tree, the shared test
// net of the package.
const balanced7 = `s1 -  25 1n 50f
s2 s1 25 1n 50f
s3 s1 25 1n 50f
s4 s2 25 1n 50f
s5 s2 25 1n 50f
s6 s3 25 1n 50f
s7 s3 25 1n 50f
`

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Engine == nil {
		opts.Engine = engine.New(engine.Options{Workers: 2})
	}
	return New(opts)
}

// do executes one request against the server's handler in process.
func do(t *testing.T, s *Server, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func decodeAs[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("response is not valid %T: %v\n%s", v, err, raw)
	}
	return v
}

func register(t *testing.T, s *Server, tree string) NetInfo {
	t.Helper()
	code, raw := do(t, s, "POST", "/v1/nets", RegisterRequest{Tree: tree})
	if code != 200 {
		t.Fatalf("register: status %d: %s", code, raw)
	}
	return decodeAs[NetInfo](t, raw)
}

func TestRegisterAndPointQuery(t *testing.T) {
	s := newTestServer(t, Options{})
	info := register(t, s, balanced7)
	if info.Sections != 7 || info.Depth != 3 || len(info.Net) != 64 {
		t.Fatalf("register info = %+v", info)
	}

	code, raw := do(t, s, "POST", "/v1/delay", DelayRequest{Net: info.Net, Node: "s7"})
	if code != 200 {
		t.Fatalf("delay: status %d: %s", code, raw)
	}
	resp := decodeAs[DelayResponse](t, raw)
	if resp.Net != info.Net || resp.Result.Node != "s7" || resp.Result.Delay50 <= 0 {
		t.Fatalf("delay response = %+v", resp)
	}
	if resp.Result.Zeta == nil || resp.Result.OmegaN == nil {
		t.Fatal("inductive node should carry a second-order model")
	}

	// The second query must be a registry hit — the warm-session path.
	before := s.Registry().Stats()
	code, _ = do(t, s, "POST", "/v1/delay", DelayRequest{Net: info.Net, Node: "s4"})
	if code != 200 {
		t.Fatalf("second delay: status %d", code)
	}
	after := s.Registry().Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("expected a registry hit: before %+v after %+v", before, after)
	}
}

func TestInlineTreeRegistersAndWarmsNet(t *testing.T) {
	s := newTestServer(t, Options{})
	code, raw := do(t, s, "POST", "/v1/delay", DelayRequest{Tree: balanced7, Node: "s1"})
	if code != 200 {
		t.Fatalf("inline delay: status %d: %s", code, raw)
	}
	resp := decodeAs[DelayResponse](t, raw)
	// The net is now resident under the returned fingerprint.
	code, _ = do(t, s, "POST", "/v1/analyze", AnalyzeRequest{Net: resp.Net})
	if code != 200 {
		t.Fatalf("analyze by returned net id: status %d", code)
	}
}

func TestAnalyzeWholeTree(t *testing.T) {
	s := newTestServer(t, Options{})
	info := register(t, s, balanced7)
	code, raw := do(t, s, "POST", "/v1/analyze", AnalyzeRequest{Net: info.Net})
	if code != 200 {
		t.Fatalf("analyze: status %d: %s", code, raw)
	}
	resp := decodeAs[AnalyzeResponse](t, raw)
	if len(resp.Nodes) != 7 {
		t.Fatalf("got %d nodes, want 7", len(resp.Nodes))
	}
	for i, want := range []string{"s1", "s2", "s3", "s4", "s5", "s6", "s7"} {
		if resp.Nodes[i].Node != want {
			t.Fatalf("node %d = %q, want %q (topological order)", i, resp.Nodes[i].Node, want)
		}
	}
}

func TestEditRekeysNet(t *testing.T) {
	s := newTestServer(t, Options{})
	info := register(t, s, balanced7)
	code, raw := do(t, s, "POST", "/v1/edit", EditRequest{
		Net:   info.Net,
		Edits: []EditSpec{{Node: "s4", Elem: "C", Value: 80e-15}, {Node: "s2", Elem: "r", Value: 30}},
		Node:  "s7",
	})
	if code != 200 {
		t.Fatalf("edit: status %d: %s", code, raw)
	}
	resp := decodeAs[EditResponse](t, raw)
	if resp.Applied != 2 || resp.Net == info.Net || len(resp.Net) != 64 {
		t.Fatalf("edit response = %+v", resp)
	}

	// The old key is gone (content changed), the new key serves.
	code, _ = do(t, s, "POST", "/v1/delay", DelayRequest{Net: info.Net, Node: "s7"})
	if code != 404 {
		t.Fatalf("stale key: status %d, want 404", code)
	}
	code, _ = do(t, s, "POST", "/v1/delay", DelayRequest{Net: resp.Net, Node: "s7"})
	if code != 200 {
		t.Fatalf("new key: status %d, want 200", code)
	}
}

func TestEditNoopKeepsKey(t *testing.T) {
	s := newTestServer(t, Options{})
	info := register(t, s, balanced7)
	// Writing the stored value back is a no-op edit: same content, same key.
	code, raw := do(t, s, "POST", "/v1/edit", EditRequest{
		Net:   info.Net,
		Edits: []EditSpec{{Node: "s1", Elem: "R", Value: 25}},
		Node:  "s1",
	})
	if code != 200 {
		t.Fatalf("noop edit: status %d: %s", code, raw)
	}
	if resp := decodeAs[EditResponse](t, raw); resp.Net != info.Net {
		t.Fatalf("no-op edit changed the key: %s -> %s", info.Net, resp.Net)
	}
}

func TestBatchMixedItems(t *testing.T) {
	s := newTestServer(t, Options{})
	info := register(t, s, balanced7)
	unknown := strings.Repeat("ab", 32)
	code, raw := do(t, s, "POST", "/v1/batch", BatchRequest{
		Workers: 2,
		Items: []BatchItem{
			{Net: info.Net, Node: "s7"},
			{Net: info.Net}, // whole-tree
			{Net: unknown, Node: "s1"},
			{Tree: "bad", Node: "x"},
		},
	})
	if code != 200 {
		t.Fatalf("batch: status %d: %s", code, raw)
	}
	resp := decodeAs[BatchResponse](t, raw)
	if resp.Failed != 2 || len(resp.Results) != 4 {
		t.Fatalf("batch response = %+v", resp)
	}
	if resp.Results[0].Result == nil || resp.Results[0].Result.Node != "s7" {
		t.Fatalf("item 0 = %+v", resp.Results[0])
	}
	if len(resp.Results[1].Nodes) != 7 {
		t.Fatalf("item 1: got %d nodes, want 7", len(resp.Results[1].Nodes))
	}
	if resp.Results[2].Error == nil || resp.Results[2].Error.Class != "not_found" || resp.Results[2].Error.Status != 404 {
		t.Fatalf("item 2 = %+v", resp.Results[2])
	}
	if resp.Results[3].Error == nil || resp.Results[3].Error.Class != "parse" {
		t.Fatalf("item 3 = %+v", resp.Results[3])
	}
}

func TestBatchNegativeWorkersRejectedByEngine(t *testing.T) {
	s := newTestServer(t, Options{})
	info := register(t, s, balanced7)
	code, raw := do(t, s, "POST", "/v1/batch", BatchRequest{
		Workers: -3,
		Items:   []BatchItem{{Net: info.Net, Node: "s7"}, {Net: info.Net, Node: "s1"}},
	})
	if code != 200 {
		t.Fatalf("batch: status %d: %s", code, raw)
	}
	resp := decodeAs[BatchResponse](t, raw)
	if resp.Failed != 2 {
		t.Fatalf("want both items limit-rejected, got %+v", resp)
	}
	for i, r := range resp.Results {
		if r.Error == nil || r.Error.Class != "limit" || r.Error.Status != 413 {
			t.Fatalf("item %d = %+v, want limit/413", i, r)
		}
	}
}

// TestStatusMatrixOverTheWire drives every deterministically reachable
// guard-class→HTTP-status pair through real requests, mirroring the
// exhaustive unit matrix in internal/guard.
func TestStatusMatrixOverTheWire(t *testing.T) {
	s := newTestServer(t, Options{
		Limits:        guard.Limits{MaxSections: 8},
		MaxEdits:      4,
		MaxBatchItems: 4,
	})
	info := register(t, s, balanced7)
	bigTree := func() string {
		var b strings.Builder
		parent := "-"
		for i := 0; i < 9; i++ {
			fmt.Fprintf(&b, "n%d %s 1 1n 1f\n", i, parent)
			parent = fmt.Sprintf("n%d", i)
		}
		return b.String()
	}()

	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantClass  string
	}{
		{"parse_bad_tree", "POST", "/v1/delay", DelayRequest{Tree: "not a tree", Node: "x"}, 400, "parse"},
		{"topology_unknown_parent", "POST", "/v1/delay", DelayRequest{Tree: "a zz 1 1n 1f", Node: "a"}, 422, "topology"},
		{"limit_sections", "POST", "/v1/analyze", AnalyzeRequest{Tree: bigTree}, 413, "limit"},
		{"limit_edits", "POST", "/v1/edit", EditRequest{Net: info.Net, Node: "s1", Edits: make([]EditSpec, 5)}, 413, "limit"},
		{"limit_batch_items", "POST", "/v1/batch", BatchRequest{Items: make([]BatchItem, 5)}, 413, "limit"},
		{"not_found_net", "POST", "/v1/delay", DelayRequest{Net: strings.Repeat("00", 32), Node: "x"}, 404, "not_found"},
		{"not_found_node", "POST", "/v1/delay", DelayRequest{Net: info.Net, Node: "nope"}, 404, "not_found"},
		{"method_not_allowed", "GET", "/v1/delay", nil, 405, "method"},
		{"bad_json", "POST", "/v1/delay", `{"node":`, 400, "parse"},
		{"unknown_field", "POST", "/v1/delay", `{"node":"s1","nope":1}`, 400, "parse"},
		{"trailing_data", "POST", "/v1/delay", `{"node":"s1"} {}`, 400, "parse"},
		{"both_tree_and_net", "POST", "/v1/delay", DelayRequest{Tree: balanced7, Net: info.Net, Node: "s1"}, 400, "parse"},
		{"neither_tree_nor_net", "POST", "/v1/delay", DelayRequest{Node: "s1"}, 400, "parse"},
		{"missing_node", "POST", "/v1/delay", DelayRequest{Net: info.Net}, 400, "parse"},
		{"bad_elem", "POST", "/v1/edit", EditRequest{Net: info.Net, Node: "s1", Edits: []EditSpec{{Node: "s1", Elem: "X", Value: 1}}}, 400, "parse"},
		{"negative_value", "POST", "/v1/edit", EditRequest{Net: info.Net, Node: "s1", Edits: []EditSpec{{Node: "s1", Elem: "R", Value: -1}}}, 422, "topology"},
		{"bad_fingerprint", "POST", "/v1/delay", DelayRequest{Net: "zz", Node: "s1"}, 400, "parse"},
		{"batch_empty", "POST", "/v1/batch", BatchRequest{}, 400, "parse"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, raw := do(t, s, c.method, c.path, c.body)
			if code != c.wantStatus {
				t.Fatalf("status %d, want %d: %s", code, c.wantStatus, raw)
			}
			er := decodeAs[ErrorResponse](t, raw)
			if er.Error.Class != c.wantClass || er.Error.Status != c.wantStatus || er.Error.Message == "" {
				t.Fatalf("error body = %+v, want class %q status %d", er.Error, c.wantClass, c.wantStatus)
			}
		})
	}
}

func TestBodyTooLargeIsLimit413(t *testing.T) {
	// MaxBytesReader only triggers through a real HTTP server; httptest
	// recorder requests don't enforce it identically, so go over the wire.
	s := newTestServer(t, Options{MaxBodyBytes: 256})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body, _ := json.Marshal(DelayRequest{Tree: balanced7 + strings.Repeat("# pad\n", 100), Node: "s1"})
	resp, err := srv.Client().Post(srv.URL+"/v1/delay", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 413 {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Class != "limit" {
		t.Fatalf("class = %q, want limit", er.Error.Class)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := newTestServer(t, Options{})
	info := register(t, s, balanced7)
	if code, _ := do(t, s, "GET", "/healthz", nil); code != 200 {
		t.Fatalf("healthz before drain: %d", code)
	}
	s.Drain()
	code, raw := do(t, s, "GET", "/healthz", nil)
	if code != 503 {
		t.Fatalf("healthz during drain: %d", code)
	}
	if h := decodeAs[HealthResponse](t, raw); h.Status != "draining" {
		t.Fatalf("health body = %+v", h)
	}
	code, raw = do(t, s, "POST", "/v1/delay", DelayRequest{Net: info.Net, Node: "s1"})
	if code != 503 {
		t.Fatalf("delay during drain: %d: %s", code, raw)
	}
	if er := decodeAs[ErrorResponse](t, raw); er.Error.Class != "draining" {
		t.Fatalf("error body = %+v", er.Error)
	}
}

func TestQueuedRequestTimesOut504(t *testing.T) {
	s := newTestServer(t, Options{MaxInflight: 1, RequestTimeout: 20 * time.Millisecond})
	register(t, s, balanced7)
	// Occupy the single worker slot so the request queues, then let its
	// deadline fire while it waits.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	code, raw := do(t, s, "POST", "/v1/delay", DelayRequest{Tree: balanced7, Node: "s1"})
	if code != 504 {
		t.Fatalf("status %d, want 504: %s", code, raw)
	}
	if er := decodeAs[ErrorResponse](t, raw); er.Error.Class != "canceled" {
		t.Fatalf("error body = %+v", er.Error)
	}
}

func TestRegistryListingEndpoint(t *testing.T) {
	s := newTestServer(t, Options{RegistryEntries: 2})
	register(t, s, balanced7)
	register(t, s, "a - 1 1n 1f\n")
	code, raw := do(t, s, "GET", "/v1/nets", nil)
	if code != 200 {
		t.Fatalf("list: status %d", code)
	}
	resp := decodeAs[RegistryResponse](t, raw)
	if resp.Resident != 2 || resp.Capacity != 2 || len(resp.Nets) != 2 {
		t.Fatalf("listing = %+v", resp)
	}
	// Most recently used first.
	if resp.Nets[0].Sections != 1 || resp.Nets[1].Sections != 7 {
		t.Fatalf("MRU order wrong: %+v", resp.Nets)
	}
}

func TestLRUEvictionOverTheWire(t *testing.T) {
	s := newTestServer(t, Options{RegistryEntries: 1})
	a := register(t, s, balanced7)
	register(t, s, "a - 1 1n 1f\n") // evicts balanced7
	code, _ := do(t, s, "POST", "/v1/delay", DelayRequest{Net: a.Net, Node: "s1"})
	if code != 404 {
		t.Fatalf("evicted net: status %d, want 404", code)
	}
}

func TestMetricsEndpointExposesServerSeries(t *testing.T) {
	s := newTestServer(t, Options{})
	register(t, s, balanced7)
	code, raw := do(t, s, "GET", "/metrics", nil)
	if code != 200 {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{"eed_server_requests_total", "eed_registry_nets", "eed_server_request_latency_ns"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("exposition missing %s", want)
		}
	}
}

func TestUnknownPathIs404(t *testing.T) {
	s := newTestServer(t, Options{})
	if code, _ := do(t, s, "GET", "/v1/nope", nil); code != 404 {
		t.Fatal("unknown path should 404")
	}
}

// TestConcurrentMixedTraffic hammers one server with every endpoint from
// many goroutines — the -race proof that the handler spine, registry and
// sessions compose safely under concurrent load.
func TestConcurrentMixedTraffic(t *testing.T) {
	s := newTestServer(t, Options{MaxInflight: 8})
	info := register(t, s, balanced7)
	// Each editor owns a private net so edits do not re-key the shared
	// one out from under the readers. Register them here: t.Fatal is only
	// legal on the test goroutine.
	private := make([]NetInfo, 16)
	for w := range private {
		private[w] = register(t, s, fmt.Sprintf("p - %d 1n 50f\nq p 25 1n 50f\n", 10+w))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := private[w].Net
			for i := 0; i < 40; i++ {
				if ctx.Err() != nil {
					return
				}
				var code int
				var raw []byte
				switch i % 4 {
				case 0:
					code, raw = do(t, s, "POST", "/v1/delay", DelayRequest{Net: info.Net, Node: "s7"})
				case 1:
					code, raw = do(t, s, "POST", "/v1/analyze", AnalyzeRequest{Net: info.Net})
				case 2:
					code, raw = do(t, s, "POST", "/v1/edit", EditRequest{
						Net: cur, Node: "q",
						Edits: []EditSpec{{Node: "q", Elem: "C", Value: float64(40+i%5) * 1e-15}},
					})
					if code == 200 {
						var er EditResponse
						if err := json.Unmarshal(raw, &er); err != nil {
							errCh <- fmt.Errorf("worker %d op %d: bad edit body: %v", w, i, err)
							return
						}
						cur = er.Net
					}
				default:
					code, raw = do(t, s, "POST", "/v1/batch", BatchRequest{Items: []BatchItem{{Net: info.Net, Node: "s1"}}})
				}
				if code != 200 {
					errCh <- fmt.Errorf("worker %d op %d: status %d: %s", w, i, code, raw)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if s.Inflight() != 0 {
		t.Fatalf("inflight = %d after all requests returned", s.Inflight())
	}
}
