package eedsrv

import (
	"net/http"

	"eedtree/internal/faultinj"
	"eedtree/internal/guard"
	"eedtree/internal/obs"
)

// handleFaults serves the test-only /v1/faults admin endpoint (mounted
// only with Options.EnableFaults):
//
//	GET          → the armed plan's canonical spec and per-point counters
//	POST {spec}  → parse and arm the spec; an empty spec disarms
//
// The endpoint deliberately bypasses the analysis spine: no drain
// rejection (a chaos harness must clear faults from a draining instance)
// and no worker-slot queueing (arming a plan must not sit behind a
// stalled handler the plan itself caused). The body-size cap still
// applies.
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	if obs.On() {
		endpointCounter("/v1/faults").Inc()
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, faultsView())
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		var req FaultsRequest
		if err := decodeRequest(r.Body, &req); err != nil {
			writeError(w, err)
			return
		}
		if req.Spec == "" {
			faultinj.Deactivate()
			writeJSON(w, http.StatusOK, faultsView())
			return
		}
		plan, err := faultinj.Parse(req.Spec)
		if err != nil {
			writeError(w, guard.New(guard.ErrParse, "eedsrv.faults", err))
			return
		}
		faultinj.Activate(plan)
		writeJSON(w, http.StatusOK, faultsView())
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, &apiErr{status: http.StatusMethodNotAllowed, class: "method",
			message: "/v1/faults accepts GET and POST"})
	}
}

// faultsView snapshots the armed plan for the wire.
func faultsView() FaultsResponse {
	plan := faultinj.Active()
	if plan == nil {
		return FaultsResponse{Enabled: false}
	}
	resp := FaultsResponse{Enabled: true, Spec: plan.String()}
	for _, st := range plan.Stats() {
		ps := FaultPointStatus{
			Point: string(st.Point), P: st.P, N: st.N, After: st.After,
			Calls: st.Calls, Fired: st.Fired,
		}
		if st.D > 0 {
			ps.D = st.D.String()
		}
		resp.Points = append(resp.Points, ps)
	}
	return resp
}
