package moments

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eedtree/internal/rlctree"
)

// bruteMoments computes moments directly from the definition
// m_k(i) = −Σ_{w∈path(i)} (R_w·I_w^(k) + L_w·I_w^(k−1)) with
// I_w^(k) = Σ_{j downstream of w} C_j·m_{k−1}(j), evaluating the
// downstream sets naively. O(n³) per order; test oracle only.
func bruteMoments(t *rlctree.Tree, order int) [][]float64 {
	n := t.Len()
	sections := t.Sections()
	m := make([][]float64, order+1)
	m[0] = make([]float64, n)
	for i := range m[0] {
		m[0][i] = 1
	}
	downstream := func(w, j *rlctree.Section) bool {
		for p := j; p != nil; p = p.Parent() {
			if p == w {
				return true
			}
		}
		return false
	}
	current := func(w *rlctree.Section, mk []float64) float64 {
		if mk == nil {
			return 0
		}
		var s float64
		for _, j := range sections {
			if downstream(w, j) {
				s += j.C() * mk[j.Index()]
			}
		}
		return s
	}
	for k := 1; k <= order; k++ {
		var prev []float64
		if k >= 2 {
			prev = m[k-2]
		}
		mk := make([]float64, n)
		for i, si := range sections {
			var sum float64
			for _, w := range si.Path() {
				sum += w.R()*current(w, m[k-1]) + w.L()*current(w, prev)
			}
			mk[i] = -sum
		}
		m[k] = mk
	}
	return m
}

func singleSection(r, l, c float64) *rlctree.Tree {
	t := rlctree.New()
	t.MustAddSection("s1", nil, r, l, c)
	return t
}

func TestComputeValidation(t *testing.T) {
	tr := singleSection(1, 1e-9, 1e-15)
	if _, err := Compute(tr, -1); err == nil {
		t.Fatal("expected error for negative order")
	}
	if _, err := Compute(rlctree.New(), 2); err == nil {
		t.Fatal("expected error for empty tree")
	}
}

func TestZerothMomentIsUnity(t *testing.T) {
	tr := singleSection(10, 1e-9, 1e-12)
	m, err := Compute(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 1 {
		t.Fatalf("m0 = %g, want 1", m[0][0])
	}
}

// TestSingleSectionKnownMoments: for a single RLC section the transfer
// function is exactly H(s) = 1/(1 + RCs + LCs²) whose series expansion is
// 1 − RC·s + (R²C² − LC)·s² + (−R³C³ + 2RLC²)·s³ + …
func TestSingleSectionKnownMoments(t *testing.T) {
	r, l, c := 30.0, 8e-9, 120e-15
	tr := singleSection(r, l, c)
	m, err := Compute(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := r * c // s-coefficient of the denominator
	b := l * c // s²-coefficient
	wants := []float64{1, -a, a*a - b, -a*a*a + 2*a*b}
	for k, want := range wants {
		if got := m[k][0]; math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Fatalf("m%d = %g, want %g", k, got, want)
		}
	}
}

// TestFirstMomentEqualsElmoreSums: m1 must equal −S_R from the Appendix
// algorithm at every node (paper eq. 26).
func TestFirstMomentEqualsElmoreSums(t *testing.T) {
	tr, err := rlctree.BalancedUniform(4, 2, rlctree.SectionValues{R: 20, L: 4e-9, C: 30e-15})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compute(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	sums := tr.ElmoreSums()
	for i := range sums.SR {
		if math.Abs(m[1][i]+sums.SR[i]) > 1e-18 {
			t.Fatalf("node %d: m1 = %g, want %g", i, m[1][i], -sums.SR[i])
		}
	}
}

// TestSecondMomentStructure: the exact second moment is
// m2 = Σ_w R_w·Σ_j C_j·(−m1_j) − Σ_k C_k L_ik. The paper's eq. (28)
// approximates the first term by (Σ_k C_k R_ik)²; for a single path the
// exact term differs. Verify the inductive part: m2 + (RC cross term) must
// equal −S_L for the inductive contribution on a single section.
func TestSecondMomentInductivePart(t *testing.T) {
	r, l, c := 10.0, 2e-9, 50e-15
	tr := singleSection(r, l, c)
	m, _ := Compute(tr, 2)
	sums := tr.ElmoreSums()
	// Single section: m2 = (RC)² − LC = SR² − SL exactly (eq. 28 is exact
	// for a single section).
	want := sums.SR[0]*sums.SR[0] - sums.SL[0]
	if math.Abs(m[2][0]-want) > 1e-24 {
		t.Fatalf("m2 = %g, want %g", m[2][0], want)
	}
}

// Property: the O(n)-per-order recursion equals the brute-force definition
// for random trees up to order 5.
func TestComputeMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 2+rng.Intn(15))
		const order = 5
		fast, err := Compute(tr, order)
		if err != nil {
			return false
		}
		brute := bruteMoments(tr, order)
		for k := 0; k <= order; k++ {
			for i := range fast[k] {
				a, b := fast[k][i], brute[k][i]
				scale := math.Max(math.Abs(a), math.Abs(b))
				if scale > 0 && math.Abs(a-b) > 1e-9*scale {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomTree(rng *rand.Rand, n int) *rlctree.Tree {
	tr := rlctree.New()
	var all []*rlctree.Section
	for i := 0; i < n; i++ {
		var parent *rlctree.Section
		if len(all) > 0 && rng.Float64() < 0.8 {
			parent = all[rng.Intn(len(all))]
		}
		name := "s" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		s := tr.MustAddSection(name, parent,
			rng.Float64()*50, rng.Float64()*5e-9, rng.Float64()*100e-15)
		all = append(all, s)
	}
	return tr
}

func TestAt(t *testing.T) {
	tr, err := rlctree.BalancedUniform(3, 2, rlctree.SectionValues{R: 10, L: 1e-9, C: 20e-15})
	if err != nil {
		t.Fatal(err)
	}
	sink := tr.Leaves()[0]
	ms, err := At(sink, 3)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := Compute(tr, 3)
	for k := range ms {
		if ms[k] != all[k][sink.Index()] {
			t.Fatalf("At moment %d mismatch", k)
		}
	}
}

// TestMomentSignAlternationRC: for a pure RC tree all moments alternate in
// sign (the impulse response is nonnegative), a classical property.
func TestMomentSignAlternationRC(t *testing.T) {
	tr, err := rlctree.Line("w", 8, rlctree.SectionValues{R: 15, L: 0, C: 40e-15})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compute(tr, 6)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 6; k++ {
		for i := range m[k] {
			sign := math.Copysign(1, m[k][i])
			wantSign := 1.0
			if k%2 == 1 {
				wantSign = -1
			}
			if sign != wantSign {
				t.Fatalf("RC tree moment m%d[%d] = %g violates sign alternation", k, i, m[k][i])
			}
		}
	}
}
