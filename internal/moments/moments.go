// Package moments computes the exact voltage moments of RLC trees — the
// coefficients m_k of the normalized transfer-function expansion
// G_i(s) = Σ_k m_k^{(i)} s^k at every node i (paper eqs. 20–27).
//
// The first two moments drive the paper's second-order model; higher
// moments feed the AWE baseline (internal/awe). The computation follows the
// classic RICE/Ratzlaff recursion for RLC trees [35], [48]: for each order,
// a bottom-up pass accumulates the per-branch "moment currents" and a
// top-down pass accumulates the voltage drops along each path, so each
// additional order costs O(n).
package moments

import (
	"fmt"

	"eedtree/internal/rlctree"
)

// Compute returns the voltage moments at every section node of the tree:
// result[k][i] is the k-th moment of the normalized transfer function at
// section index i, for k = 0..order. The zeroth moment is identically 1
// (unit DC gain from input to every node of a tree with no resistive path
// to ground).
//
// The recursion: writing I_w^{(k)} = Σ_{j downstream of w} C_j·m_{k-1}^{(j)}
// for the k-th-order moment of the current through branch w,
//
//	m_k^{(i)} = −Σ_{w ∈ path(i)} ( R_w·I_w^{(k)} + L_w·I_w^{(k-1)} )
//
// with m_{-1} ≡ 0. For k = 1 this reduces to the (negated) Elmore sums of
// rlctree.ElmoreSums; for k = 2 it yields the exact second moment, of which
// paper eq. (28) keeps the dominant part.
func Compute(t *rlctree.Tree, order int) ([][]float64, error) {
	if order < 0 {
		return nil, fmt.Errorf("moments: order must be ≥ 0, got %d", order)
	}
	n := t.Len()
	if n == 0 {
		return nil, fmt.Errorf("moments: empty tree")
	}
	sections := t.Sections()
	m := make([][]float64, order+1)
	m[0] = make([]float64, n)
	for i := range m[0] {
		m[0][i] = 1
	}
	prevI := make([]float64, n) // I^{(k-1)}; zero for k = 1 (m_{-1} ≡ 0)
	curI := make([]float64, n)
	for k := 1; k <= order; k++ {
		// Bottom-up: curI[w] = Σ_{j ∈ down(w)} C_j·m_{k-1}[j].
		for i := range curI {
			curI[i] = 0
		}
		for i := n - 1; i >= 0; i-- {
			s := sections[i]
			curI[i] += s.C() * m[k-1][i]
			if p := s.Parent(); p != nil {
				curI[p.Index()] += curI[i]
			}
		}
		// Top-down: accumulate the series voltage drops along each path.
		mk := make([]float64, n)
		for i, s := range sections {
			var base float64
			if p := s.Parent(); p != nil {
				base = mk[p.Index()]
			}
			mk[i] = base - s.R()*curI[i] - s.L()*prevI[i]
		}
		m[k] = mk
		prevI, curI = curI, prevI
	}
	return m, nil
}

// At returns the moments m_0..m_order at a single section's node. The cost
// is the same as Compute for the whole tree (O(n) per order).
func At(s *rlctree.Section, order int) ([]float64, error) {
	all, err := Compute(s.Tree(), order)
	if err != nil {
		return nil, err
	}
	out := make([]float64, order+1)
	for k := 0; k <= order; k++ {
		out[k] = all[k][s.Index()]
	}
	return out, nil
}
