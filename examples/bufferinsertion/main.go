// Repeater (buffer) insertion in an inductive global line — the other
// classic synthesis application of Elmore-style delay models (paper
// Sec. I cites buffer insertion in trees as a primary consumer).
//
// The example sizes and counts repeaters for a 10 mm global wire twice:
// once with the full RLC model and once with inductance zeroed (the RC
// analysis). The headline effect of inductance-aware repeater insertion
// appears directly: the RLC-aware plan uses FEWER, differently sized
// repeaters, because inductance makes long unrepeated segments faster
// than the RC model predicts.
//
// Run with:
//
//	go run ./examples/bufferinsertion
package main

import (
	"fmt"
	"log"

	"eedtree/internal/opt"
)

func main() {
	// A 10 mm top-metal global wire: 26 Ω/mm, 0.8 nH/mm, 0.2 pF/mm.
	line := opt.LineSpec{R: 260, L: 8e-9, C: 2e-12, Sections: 16}
	rep := opt.Repeater{ROut: 1500, CIn: 10e-15, TIntrinsic: 5e-12}

	rlcPlan, err := opt.InsertRepeaters(line, rep, 12, 0.5, 400)
	if err != nil {
		log.Fatal(err)
	}
	rcLine := line
	rcLine.L = 0
	rcPlan, err := opt.InsertRepeaters(rcLine, rep, 12, 0.5, 400)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("repeater insertion for a 10 mm global wire (260 Ω, 8 nH, 2 pF):")
	fmt.Printf("\n%-22s %10s %10s %14s %14s\n", "model", "repeaters", "size", "stage [ps]", "total [ps]")
	fmt.Printf("%-22s %10d %10.1f %14.2f %14.2f\n", "RLC (this paper)", rlcPlan.K, rlcPlan.Size, 1e12*rlcPlan.StageDelay, 1e12*rlcPlan.TotalDelay)
	fmt.Printf("%-22s %10d %10.1f %14.2f %14.2f\n", "RC (inductance = 0)", rcPlan.K, rcPlan.Size, 1e12*rcPlan.StageDelay, 1e12*rcPlan.TotalDelay)

	// What the RC-derived plan actually costs on the real (RLC) line:
	rcOnRLC, err := opt.StageDelay(line, rep, rcPlan.K, rcPlan.Size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRC-derived plan evaluated on the real RLC line: %.2f ps total\n", 1e12*rcOnRLC*float64(rcPlan.K))
	fmt.Printf("RLC-aware plan on the same line:                %.2f ps total\n", 1e12*rlcPlan.TotalDelay)
	if rlcPlan.K < rcPlan.K {
		fmt.Printf("\nInductance awareness saved %d repeaters (%d → %d) — area and power —\n",
			rcPlan.K-rlcPlan.K, rcPlan.K, rlcPlan.K)
		fmt.Println("while meeting or beating the RC-derived plan's delay.")
	}

	// The full delay/energy trade-off, for designers who can give up a few
	// percent of delay for switching energy.
	points, err := opt.RepeaterPareto(line, rep, 8, 0.5, 400, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelay/energy front (Vdd = 1 V):\n%4s %8s %12s %12s  %s\n", "k", "size", "delay[ps]", "energy[fJ]", "front")
	for _, p := range points {
		mark := ""
		if p.Pareto {
			mark = "*"
		}
		fmt.Printf("%4d %8.1f %12.2f %12.2f  %s\n", p.K, p.Size, 1e12*p.TotalDelay, 1e15*p.Energy, mark)
	}
}
