// Process-variation analysis: the kind of workload that makes closed-form
// delay models indispensable. Thousands of Monte-Carlo samples of an RLC
// net (±15% R, ±10% L, ±12% C, 3σ) are timed with the equivalent Elmore
// model in milliseconds — each sample is two O(n) passes plus a couple of
// exponentials — and a handful of samples are spot-checked against the
// transient simulator.
//
// Run with:
//
//	go run ./examples/variation
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	"eedtree/internal/core"
	"eedtree/internal/rlctree"
	"eedtree/internal/sources"
	"eedtree/internal/transim"
)

const (
	samples = 5000
	sigmaR  = 0.05 // 1σ relative variation of resistance
	sigmaL  = 0.0333
	sigmaC  = 0.04
)

func main() {
	rng := rand.New(rand.NewSource(20260705))
	nominal, err := rlctree.BalancedUniform(4, 2, rlctree.SectionValues{R: 20, L: 1.5e-9, C: 45e-15})
	if err != nil {
		log.Fatal(err)
	}
	sinkName := nominal.Leaves()[0].Name()

	start := time.Now()
	delays := make([]float64, 0, samples)
	var worstTree *rlctree.Tree
	worst := 0.0
	for i := 0; i < samples; i++ {
		tree := perturb(rng, nominal)
		m, err := core.AtNode(tree.Section(sinkName))
		if err != nil {
			log.Fatal(err)
		}
		d := m.Delay50()
		delays = append(delays, d)
		if d > worst {
			worst, worstTree = d, tree
		}
	}
	elapsed := time.Since(start)

	sort.Float64s(delays)
	mean, std := stats(delays)
	fmt.Printf("%d Monte-Carlo samples in %v (%.1f µs/sample)\n",
		samples, elapsed.Round(time.Millisecond), float64(elapsed.Microseconds())/samples)
	fmt.Printf("sink %s 50%% delay:\n", sinkName)
	fmt.Printf("  mean   %8.2f ps\n", 1e12*mean)
	fmt.Printf("  sigma  %8.2f ps (%.1f%%)\n", 1e12*std, 100*std/mean)
	fmt.Printf("  p1     %8.2f ps\n", 1e12*quantile(delays, 0.01))
	fmt.Printf("  p50    %8.2f ps\n", 1e12*quantile(delays, 0.50))
	fmt.Printf("  p99    %8.2f ps\n", 1e12*quantile(delays, 0.99))
	fmt.Printf("  max    %8.2f ps\n", 1e12*worst)

	// Spot-check the worst-case sample against the simulator.
	simD, err := simulate(worstTree, sinkName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst sample cross-check: model %.2f ps vs simulated %.2f ps (%.1f%% error)\n",
		1e12*worst, 1e12*simD, 100*math.Abs(worst-simD)/simD)
}

// perturb clones the nominal tree with log-normal-ish multiplicative
// variation on every element.
func perturb(rng *rand.Rand, nominal *rlctree.Tree) *rlctree.Tree {
	out := rlctree.New()
	sections := nominal.Sections()
	copies := make([]*rlctree.Section, len(sections))
	for _, s := range sections {
		var parent *rlctree.Section
		if p := s.Parent(); p != nil {
			parent = copies[p.Index()]
		}
		vary := func(v, sigma float64) float64 {
			return v * math.Max(0.5, 1+sigma*rng.NormFloat64())
		}
		c := out.MustAddSection(s.Name(), parent,
			vary(s.R(), sigmaR), vary(s.L(), sigmaL), vary(s.C(), sigmaC))
		copies[s.Index()] = c
	}
	return out
}

func stats(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)-1))
	return mean, std
}

func quantile(sorted []float64, q float64) float64 {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func simulate(tree *rlctree.Tree, node string) (float64, error) {
	deck, err := tree.ToDeck(sources.Step{V0: 0, V1: 1})
	if err != nil {
		return 0, err
	}
	m, err := core.AtNode(tree.Section(node))
	if err != nil {
		return 0, err
	}
	ts, err := m.SettlingTime(core.SettlingBand)
	if err != nil {
		ts = 10 * m.Delay50()
	}
	horizon := math.Max(8*m.Delay50(), 2.5*ts)
	res, err := transim.Simulate(deck, transim.Options{Step: horizon / 25000, Stop: horizon})
	if err != nil {
		return 0, err
	}
	w, err := res.Node(node)
	if err != nil {
		return 0, err
	}
	return w.Delay50(1)
}
