// Crosstalk between coupled RLC lines: a switching aggressor next to a
// quiet victim. The even/odd mode decomposition turns the coupled pair
// into two independent lines, each characterized by the paper's
// equivalent Elmore closed forms — the victim's far-end noise pulse is
// half the difference of the mode step responses. The estimate is checked
// against a full coupled-circuit simulation (mutual inductors + coupling
// capacitors).
//
// Run with:
//
//	go run ./examples/crosstalk
package main

import (
	"fmt"
	"log"
	"math"

	"eedtree/internal/sources"
	"eedtree/internal/transim"
	"eedtree/internal/xtalk"
)

func main() {
	pair := xtalk.CoupledPair{
		R: 26, L: 0.5e-9, C: 0.2e-12, // per mm
		Lm: 0.15e-9, Cc: 0.05e-12, // 30% inductive, 25% capacitive coupling
		Len: 3, Secs: 10,
		RDrv: 50, CLoad: 20e-15,
	}
	even, odd, err := pair.ModeModels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mode models at the far end:\n")
	fmt.Printf("  even (L+Lm, C):      zeta=%.3f  omegaN=%.3g rad/s\n", even.Zeta(), even.OmegaN())
	fmt.Printf("  odd  (L-Lm, C+2Cc):  zeta=%.3f  omegaN=%.3g rad/s\n", odd.Zeta(), odd.OmegaN())

	est, err := pair.Analyze(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2-pole (EED) estimate: victim peak %.1f mV at %.1f ps, aggressor delay %.1f ps\n",
		1e3*est.VictimPeak, 1e12*est.VictimPeakAt, 1e12*est.AggrDelay50)
	estAWE, err := pair.AnalyzeAWE(1.0, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AWE-4 mode estimate:   victim peak %.1f mV at %.1f ps\n",
		1e3*estAWE.VictimPeak, 1e12*estAWE.VictimPeakAt)

	// Full coupled simulation.
	deck, err := pair.Deck(sources.Step{V0: 0, V1: 1})
	if err != nil {
		log.Fatal(err)
	}
	const stop = 2e-9
	res, err := transim.Simulate(deck, transim.Options{Step: stop / 40000, Stop: stop})
	if err != nil {
		log.Fatal(err)
	}
	aggName, vicName := pair.FarEndNodes()
	vic, err := res.Node(vicName)
	if err != nil {
		log.Fatal(err)
	}
	simPeak, simAt := 0.0, 0.0
	for i, v := range vic.Value {
		if a := math.Abs(v); a > simPeak {
			simPeak, simAt = a, vic.Time[i]
		}
	}
	agg, _ := res.Node(aggName)
	simDelay, _ := agg.Delay50(1)
	fmt.Printf("coupled simulation:   victim peak %.1f mV at %.1f ps, aggressor delay %.1f ps\n",
		1e3*simPeak, 1e12*simAt, 1e12*simDelay)
	fmt.Printf("\npeak-noise error: 2-pole %.1f%%, AWE-4 %.1f%% — noise pulses carry more\n",
		100*math.Abs(est.VictimPeak-simPeak)/simPeak, 100*math.Abs(estAWE.VictimPeak-simPeak)/simPeak)
	fmt.Println("high-frequency content than delay edges (paper Sec. V-F), so the peak")
	fmt.Println("wants a higher-order model while delays are fine with two poles.")

	fmt.Println("\nvictim noise pulse (closed form vs simulation):")
	for _, ps := range []float64{25, 50, 75, 100, 150, 250, 400} {
		tt := ps * 1e-12
		fmt.Printf("  t=%4.0fps  est=%7.1f mV  sim=%7.1f mV\n", ps, 1e3*est.Victim(tt), 1e3*vic.At(tt))
	}
}
