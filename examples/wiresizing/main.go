// Wire sizing under the equivalent Elmore delay — the synthesis use case
// the paper emphasizes (Secs. I, VI): because the delay expression is one
// continuous analytic formula across all damping regimes, it can sit
// directly inside an optimizer the way the classical Elmore delay does for
// RC sizing.
//
// A 10-segment point-to-point line is sized segment-by-segment; the
// example prints the optimal width taper and compares the optimized delay
// against uniform minimum, maximum and mid-range widths.
//
// Run with:
//
//	go run ./examples/wiresizing
package main

import (
	"fmt"
	"log"

	"eedtree/internal/opt"
)

func main() {
	problem := opt.SizingProblem{
		Segments: 10,
		Model: opt.WireModel{
			RUnit:     35,     // Ω per segment at unit width
			CAreaUnit: 25e-15, // F per segment per unit width
			CFringe:   12e-15, // F per segment, width-independent
			LUnit:     0.8e-9, // H per segment (width-insensitive)
		},
		WMin:    0.5,
		WMax:    5,
		RDriver: 120,
		CLoad:   60e-15,
	}

	// Baselines: uniform widths.
	for _, w := range []float64{problem.WMin, 1.58, problem.WMax} {
		widths := uniform(problem.Segments, w)
		d, err := problem.Delay(widths)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("uniform width %.2f: delay = %.2f ps\n", w, 1e12*d)
	}

	res, err := opt.OptimizeWidths(problem, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimized delay = %.2f ps (%d coordinate-descent sweeps)\n", 1e12*res.Delay, res.Sweeps)
	fmt.Println("optimal widths (driver → load):")
	for i, w := range res.Widths {
		fmt.Printf("  segment %2d: %5.2f  %s\n", i+1, w, bar(w, problem.WMax))
	}
	fmt.Println("\nThe taper — wide near the driver, narrow at the load — is the")
	fmt.Println("classical optimal-sizing shape, here derived with inductance included.")
}

func uniform(n int, w float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = w
	}
	return out
}

func bar(w, max float64) string {
	n := int(w / max * 40)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
