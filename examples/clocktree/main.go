// Clock-tree skew analysis: the motivating application of fast delay
// models (paper Sec. I — clock distribution networks use exactly the wide,
// low-resistance wires where inductance matters).
//
// An H-tree clock network is built, then perturbed: the sinks on one side
// receive extra load capacitance (imbalanced latch banks). The example
// reports the clock skew predicted by the equivalent Elmore model against
// the classical RC Elmore model, and cross-checks both against the
// transient simulator. With significant inductance, the RC model
// mis-ranks the arrival times that the EED model gets right.
//
// Run with:
//
//	go run ./examples/clocktree
package main

import (
	"fmt"
	"log"
	"math"

	"eedtree/internal/core"
	"eedtree/internal/opt"
	"eedtree/internal/rlctree"
	"eedtree/internal/sources"
	"eedtree/internal/transim"
)

func main() {
	tree := buildImbalancedHTree()
	analyses, err := core.AnalyzeTree(tree)
	if err != nil {
		log.Fatal(err)
	}

	// Gather sink arrivals under both models.
	type arrival struct {
		name        string
		eed, elmore float64
	}
	var sinks []arrival
	for _, a := range analyses {
		if a.Section.IsLeaf() {
			sinks = append(sinks, arrival{a.Section.Name(), a.Delay50, a.ElmoreDelay50})
		}
	}

	// Simulated arrivals (the reference).
	simD, err := simulatedArrivals(tree, analyses)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sink        EED[ps]  Elmore[ps]  simulated[ps]  EED err%  Elmore err%")
	var minE, maxE, minW, maxW, minS, maxS = math.Inf(1), 0.0, math.Inf(1), 0.0, math.Inf(1), 0.0
	for _, s := range sinks {
		sim := simD[s.name]
		fmt.Printf("%-10s %8.2f  %10.2f  %13.2f  %7.2f%%  %10.2f%%\n",
			s.name, 1e12*s.eed, 1e12*s.elmore, 1e12*sim,
			100*math.Abs(s.eed-sim)/sim, 100*math.Abs(s.elmore-sim)/sim)
		minE, maxE = math.Min(minE, s.eed), math.Max(maxE, s.eed)
		minW, maxW = math.Min(minW, s.elmore), math.Max(maxW, s.elmore)
		minS, maxS = math.Min(minS, sim), math.Max(maxS, sim)
	}
	fmt.Printf("\nclock skew (max−min arrival):\n")
	fmt.Printf("  equivalent Elmore: %7.2f ps\n", 1e12*(maxE-minE))
	fmt.Printf("  classical Elmore:  %7.2f ps\n", 1e12*(maxW-minW))
	fmt.Printf("  simulated:         %7.2f ps\n", 1e12*(maxS-minS))

	// Because the EED is one continuous formula, it can sit inside an
	// optimizer: re-balance the skew by resizing the leaf branches.
	var tunable []string
	for _, s := range tree.Sections() {
		if s.IsLeaf() {
			continue
		}
		leafParent := true
		for _, c := range s.Children() {
			if !c.IsLeaf() {
				leafParent = false
			}
		}
		if leafParent && s.Level() == tree.Depth()-1 {
			tunable = append(tunable, s.Name())
		}
	}
	res, err := opt.BalanceSkew(opt.SkewProblem{
		Tree: tree, Tunable: tunable, WMin: 0.4, WMax: 6,
	}, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nskew balancing (resizing %d leaf branches, EED objective):\n", len(tunable))
	fmt.Printf("  model skew before: %7.2f ps\n", 1e12*res.SkewBefore)
	fmt.Printf("  model skew after:  %7.2f ps (%d sweeps)\n", 1e12*res.SkewAfter, res.Sweeps)
}

// buildImbalancedHTree creates a 4-level H-tree whose left-half sinks
// carry 60 fF of extra latch load.
func buildImbalancedHTree() *rlctree.Tree {
	tree, err := rlctree.HTree(4, rlctree.SectionValues{R: 18, L: 3e-9, C: 120e-15}, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	// Attach leaf loads: heavier on the first half of the sinks.
	leaves := tree.Leaves()
	for i, lf := range leaves {
		load := 40e-15
		if i < len(leaves)/2 {
			load = 100e-15
		}
		if _, err := tree.AddSection("latch_"+lf.Name(), lf, 2, 0, load); err != nil {
			log.Fatal(err)
		}
	}
	return tree
}

func simulatedArrivals(tree *rlctree.Tree, analyses []core.NodeAnalysis) (map[string]float64, error) {
	deck, err := tree.ToDeck(sources.Step{V0: 0, V1: 1})
	if err != nil {
		return nil, err
	}
	horizon := 0.0
	for _, a := range analyses {
		h := 6 * a.Delay50
		if !math.IsNaN(a.SettlingTime) && 2*a.SettlingTime > h {
			h = 2 * a.SettlingTime
		}
		if h > horizon {
			horizon = h
		}
	}
	res, err := transim.Simulate(deck, transim.Options{Step: horizon / 30000, Stop: horizon})
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, a := range analyses {
		if !a.Section.IsLeaf() {
			continue
		}
		w, err := res.Node(a.Section.Name())
		if err != nil {
			return nil, err
		}
		d, err := w.Delay50(1)
		if err != nil {
			return nil, err
		}
		out[a.Section.Name()] = d
	}
	return out, nil
}
