// Inductance screening: decide per net whether the RC Elmore delay is
// good enough or the RLC equivalent Elmore model is required, using the
// figures of merit from the authors' companion paper ([8] in the
// references) — then verify the decision against the transient simulator.
//
// This is the workflow the paper's introduction motivates: with millions
// of nets, a cheap screen routes most nets to the cheapest model and only
// the inductance-significant ones to the RLC closed forms.
//
// Run with:
//
//	go run ./examples/inductancescreen
package main

import (
	"fmt"
	"log"
	"math"

	"eedtree/internal/core"
	"eedtree/internal/fom"
	"eedtree/internal/rlctree"
	"eedtree/internal/sources"
	"eedtree/internal/transim"
)

type net struct {
	name   string
	params fom.LineParams // per-mm parameters
	length float64        // mm
}

func main() {
	// Input edge: a 50 ps rise time (fast clock/driver edge).
	const tRise = 50e-12
	nets := []net{
		{"local_signal", fom.LineParams{R: 250, L: 0.3e-9, C: 0.18e-12}, 0.4},
		{"medium_bus", fom.LineParams{R: 80, L: 0.45e-9, C: 0.2e-12}, 2.0},
		{"clock_spine", fom.LineParams{R: 20, L: 0.55e-9, C: 0.22e-12}, 3.0},
		{"long_global", fom.LineParams{R: 26, L: 0.5e-9, C: 0.2e-12}, 12.0},
	}

	fmt.Printf("%-14s %8s %10s %10s %9s  %-6s %12s %12s %12s\n",
		"net", "len[mm]", "lmin[mm]", "lmax[mm]", "zeta", "model", "rc50[ps]", "rlc50[ps]", "sim50[ps]")
	for _, n := range nets {
		lmin, lmax, ok, err := n.params.InductanceRange(tRise)
		if err != nil {
			log.Fatal(err)
		}
		inductive := ok && n.length > lmin && n.length < lmax

		tree, err := n.params.Discretize(n.length, 24)
		if err != nil {
			log.Fatal(err)
		}
		sink := tree.Leaves()[0]
		model, err := core.AtNode(sink)
		if err != nil {
			log.Fatal(err)
		}
		simDelay, err := simulate(tree, sink.Name())
		if err != nil {
			log.Fatal(err)
		}

		choice := "RC"
		if inductive {
			choice = "RLC"
		}
		fmt.Printf("%-14s %8.1f %10.2f %10.2f %9.3g  %-6s %12.2f %12.2f %12.2f\n",
			n.name, n.length, lmin, lmax, model.Zeta(), choice,
			1e12*model.ElmoreDelay50(), 1e12*model.Delay50(), 1e12*simDelay)
	}
	fmt.Println("\nNets flagged RLC show the RC Elmore estimate far from simulation,")
	fmt.Println("while the equivalent Elmore closed form stays close — and nets")
	fmt.Println("flagged RC are handled adequately by either model.")
}

func simulate(tree *rlctree.Tree, node string) (float64, error) {
	deck, err := tree.ToDeck(sources.Step{V0: 0, V1: 1})
	if err != nil {
		return 0, err
	}
	analyses, err := core.AnalyzeTree(tree)
	if err != nil {
		return 0, err
	}
	horizon := 0.0
	for _, a := range analyses {
		h := 8 * a.Delay50
		if !math.IsNaN(a.SettlingTime) && 2*a.SettlingTime > h {
			h = 2 * a.SettlingTime
		}
		if h > horizon {
			horizon = h
		}
	}
	res, err := transim.Simulate(deck, transim.Options{Step: horizon / 25000, Stop: horizon})
	if err != nil {
		return 0, err
	}
	w, err := res.Node(node)
	if err != nil {
		return 0, err
	}
	return w.Delay50(1)
}
