// Quickstart: build the paper's Fig.-5-style RLC tree, compute the
// equivalent Elmore characterization at every node, and show the
// closed-form step response against the classical Elmore (Wyatt) RC
// estimate.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"eedtree/internal/core"
	"eedtree/internal/rlctree"
)

func main() {
	// A balanced binary RLC tree (the paper's Fig. 5): a trunk section and
	// two levels of fan-out, 25 Ω / 1 nH / 50 fF per section. Trees can
	// also be loaded from text with rlctree.Parse.
	tree := rlctree.New()
	s1 := tree.MustAddSection("s1", nil, 25, 1e-9, 50e-15)
	s2 := tree.MustAddSection("s2", s1, 25, 1e-9, 50e-15)
	s3 := tree.MustAddSection("s3", s1, 25, 1e-9, 50e-15)
	for i, parent := range []*rlctree.Section{s2, s2, s3, s3} {
		tree.MustAddSection(fmt.Sprintf("s%d", 4+i), parent, 25, 1e-9, 50e-15)
	}

	// One linear-time pass characterizes every node (paper Appendix).
	analyses, err := core.AnalyzeTree(tree)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("node   zeta   omega_n[rad/s]  delay50[ps]  rise[ps]  overshoot  elmore50[ps]")
	for _, a := range analyses {
		fmt.Printf("%-5s  %5.3f  %14.4g  %11.2f  %8.2f  %8.1f%%  %12.2f\n",
			a.Section.Name(), a.Model.Zeta(), a.Model.OmegaN(),
			1e12*a.Delay50, 1e12*a.RiseTime, 100*a.Overshoot, 1e12*a.ElmoreDelay50)
	}

	// The full time-domain step response (paper eq. 31) at a sink:
	sink := tree.Section("s7")
	model, err := core.AtNode(sink)
	if err != nil {
		log.Fatal(err)
	}
	step := model.StepResponse(1.0)
	fmt.Printf("\nstep response at %s (ζ=%.3f):\n", sink.Name(), model.Zeta())
	for _, ps := range []float64{10, 25, 50, 100, 200, 400} {
		fmt.Printf("  t=%5.0fps  v=%.4f V\n", ps, step(ps*1e-12))
	}
	ts, err := model.SettlingTime(0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first overshoot: %.1f%% at %.1f ps; settles to ±10%% by %.1f ps\n",
		100*model.Overshoot(1), 1e12*model.OvershootTime(1), 1e12*ts)
}
